//! Experiment instrumentation.
//!
//! Two quantities drive the paper's evaluation:
//!
//! * **Convergence traces** — `(time, error)` pairs behind every curve in
//!   Figures 2, 3, 5, 7 and 8 ([`ConvergenceTrace`]).
//! * **Wait time** — "the time from when a worker submits its task result
//!   to the server until it receives a new task" (§6.3), averaged per
//!   iteration; Figures 4, 6 and Table 3 ([`WaitTimeRecorder`]).

use crate::time::{VDur, VTime};
use crate::WorkerId;

/// Accumulates per-worker wait times.
#[derive(Debug, Clone)]
pub struct WaitTimeRecorder {
    sums: Vec<VDur>,
    counts: Vec<u64>,
    /// Last result-submission instant per worker, if a wait is open.
    open_since: Vec<Option<VTime>>,
}

impl WaitTimeRecorder {
    /// A recorder for `workers` workers.
    pub fn new(workers: usize) -> Self {
        Self {
            sums: vec![VDur::ZERO; workers],
            counts: vec![0; workers],
            open_since: vec![None; workers],
        }
    }

    /// Number of workers the recorder tracks.
    pub fn workers(&self) -> usize {
        self.sums.len()
    }

    /// Grows the recorder by one worker (a mid-run join) and returns the
    /// new worker's id.
    pub fn add_worker(&mut self) -> WorkerId {
        self.sums.push(VDur::ZERO);
        self.counts.push(0);
        self.open_since.push(None);
        self.sums.len() - 1
    }

    /// Worker `w` submitted a task result at `t`: its wait begins.
    pub fn result_submitted(&mut self, w: WorkerId, t: VTime) {
        self.open_since[w] = Some(t);
    }

    /// Worker `w` received a new task at `t`: closes the open wait, if any.
    pub fn task_received(&mut self, w: WorkerId, t: VTime) {
        if let Some(start) = self.open_since[w].take() {
            self.sums[w] += t.saturating_since(start);
            self.counts[w] += 1;
        }
    }

    /// Discards `w`'s open wait without recording it — called when the
    /// worker dies (and defensively on revival), so downtime between a
    /// death and the first post-revival task is never counted as barrier
    /// wait.
    pub fn cancel_open(&mut self, w: WorkerId) {
        self.open_since[w] = None;
    }

    /// Records an explicit wait interval (used by the threaded backend,
    /// which measures real time directly).
    pub fn record(&mut self, w: WorkerId, wait: VDur) {
        self.sums[w] += wait;
        self.counts[w] += 1;
    }

    /// Mean wait of worker `w` (zero if it never waited).
    pub fn mean_for(&self, w: WorkerId) -> VDur {
        self.sums[w]
            .as_micros()
            .checked_div(self.counts[w])
            .map_or(VDur::ZERO, VDur::from_micros)
    }

    /// Mean wait across all recorded intervals of all workers — the paper's
    /// "average wait time per iteration".
    pub fn overall_mean(&self) -> VDur {
        let total: u64 = self.sums.iter().map(|d| d.as_micros()).sum();
        let n: u64 = self.counts.iter().sum();
        total.checked_div(n).map_or(VDur::ZERO, VDur::from_micros)
    }

    /// Per-worker means, indexed by worker id (Figure 4/6 bars).
    pub fn per_worker_means(&self) -> Vec<VDur> {
        (0..self.sums.len()).map(|w| self.mean_for(w)).collect()
    }

    /// Total number of recorded waits.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// A convergence trace: `(virtual time, error)` samples in time order.
#[derive(Debug, Clone, Default)]
pub struct ConvergenceTrace {
    points: Vec<(VTime, f64)>,
}

impl ConvergenceTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample; `t` must be nondecreasing.
    pub fn push(&mut self, t: VTime, error: f64) {
        if let Some(&(last, _)) = self.points.last() {
            debug_assert!(t >= last, "trace times must be nondecreasing");
        }
        self.points.push((t, error));
    }

    /// The recorded samples.
    pub fn points(&self) -> &[(VTime, f64)] {
        &self.points
    }

    /// Final recorded error, if any samples exist.
    pub fn final_error(&self) -> Option<f64> {
        self.points.last().map(|&(_, e)| e)
    }

    /// Earliest time at which the error drops to `target` or below — the
    /// "time to target error" used for the paper's speedup claims.
    pub fn time_to_reach(&self, target: f64) -> Option<VTime> {
        self.points
            .iter()
            .find(|&&(_, e)| e <= target)
            .map(|&(t, _)| t)
    }

    /// CSV rendering with the given series name:
    /// `series,time_ms,error` per line.
    pub fn to_csv(&self, series: &str) -> String {
        let mut out = String::with_capacity(self.points.len() * 32);
        for &(t, e) in &self.points {
            out.push_str(series);
            out.push(',');
            out.push_str(&format!("{:.3},{:.6e}\n", t.as_millis_f64(), e));
        }
        out
    }
}

/// Speedup of `fast` over `slow` at target error `target`:
/// `time_slow / time_fast`. `None` if either trace never reaches it.
pub fn speedup_at(slow: &ConvergenceTrace, fast: &ConvergenceTrace, target: f64) -> Option<f64> {
    let ts = slow.time_to_reach(target)?.as_micros() as f64;
    let tf = fast.time_to_reach(target)?.as_micros() as f64;
    if tf == 0.0 {
        return None;
    }
    Some(ts / tf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wait_recorder_basic_cycle() {
        let mut r = WaitTimeRecorder::new(2);
        r.result_submitted(0, VTime::from_micros(100));
        r.task_received(0, VTime::from_micros(400));
        assert_eq!(r.mean_for(0).as_micros(), 300);
        assert_eq!(r.mean_for(1), VDur::ZERO);
        assert_eq!(r.count(), 1);
    }

    #[test]
    fn task_received_without_open_wait_is_ignored() {
        let mut r = WaitTimeRecorder::new(1);
        r.task_received(0, VTime::from_micros(50));
        assert_eq!(r.count(), 0);
    }

    #[test]
    fn overall_mean_weights_by_count() {
        let mut r = WaitTimeRecorder::new(2);
        r.record(0, VDur::from_micros(100));
        r.record(0, VDur::from_micros(100));
        r.record(1, VDur::from_micros(400));
        assert_eq!(r.overall_mean().as_micros(), 200);
        assert_eq!(r.per_worker_means()[0].as_micros(), 100);
        assert_eq!(r.per_worker_means()[1].as_micros(), 400);
    }

    #[test]
    fn trace_time_to_reach() {
        let mut t = ConvergenceTrace::new();
        t.push(VTime::from_micros(0), 10.0);
        t.push(VTime::from_micros(100), 1.0);
        t.push(VTime::from_micros(200), 0.1);
        assert_eq!(t.time_to_reach(1.0), Some(VTime::from_micros(100)));
        assert_eq!(t.time_to_reach(0.05), None);
        assert_eq!(t.final_error(), Some(0.1));
    }

    #[test]
    fn speedup_computation() {
        let mut slow = ConvergenceTrace::new();
        slow.push(VTime::from_micros(1000), 0.5);
        let mut fast = ConvergenceTrace::new();
        fast.push(VTime::from_micros(250), 0.5);
        assert_eq!(speedup_at(&slow, &fast, 0.5), Some(4.0));
        assert_eq!(speedup_at(&slow, &fast, 0.1), None);
    }

    #[test]
    fn csv_format() {
        let mut t = ConvergenceTrace::new();
        t.push(VTime::from_micros(1500), 0.25);
        let csv = t.to_csv("asgd");
        assert_eq!(csv, "asgd,1.500,2.500000e-1\n");
    }
}
