//! Chaos schedules: deterministic cluster-membership churn.
//!
//! On real clouds executors do not merely slow down — they die, are
//! replaced, and new capacity joins mid-run. A [`ChaosSchedule`] is a
//! seeded, deterministic script of membership events over virtual time:
//! **kill** an executor (its in-flight task is lost), **revive** a dead
//! executor (it returns as a *fresh* executor: empty caches, rebuilt
//! broadcast state), and **join** a brand-new executor (assigned the next
//! dense worker id).
//!
//! A schedule is a passive description; engines consume it through the
//! driver's `install_chaos`, which maps events onto the engine's own
//! scheduling primitives (the simulator's deterministic event queue, the
//! threaded backend's elapsed-time checks). The same schedule therefore
//! replays bit-identically on the simulator and approximately — at real
//! elapsed instants — on OS threads.
//!
//! [`ChaosSchedule::random`] generates valid random scripts (never killing
//! the last alive worker, only reviving dead ones) and
//! [`ChaosSchedule::pcs_churn`] is the production-flavoured preset modeled
//! on the same Microsoft/Google traces as
//! [`crate::straggler::DelayModel::ProductionCluster`]: ~25 % of the fleet
//! is lost in a staggered burst, every casualty is replaced after a
//! downtime window, and one elastic scale-up join lands mid-run.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::time::VTime;
use crate::WorkerId;

/// One membership change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// Fail the worker (in-flight task lost, as `Engine::kill_worker`).
    Kill(WorkerId),
    /// Bring a dead worker back as a fresh executor.
    Revive(WorkerId),
    /// Add a brand-new worker (next dense id at the instant it applies).
    Join,
}

/// A membership change at a virtual instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosEvent {
    /// When the change takes effect.
    pub at: VTime,
    /// What changes.
    pub action: ChaosAction,
}

/// Tuning knobs for [`ChaosSchedule::random`].
#[derive(Debug, Clone)]
pub struct ChaosCfg {
    /// Number of events to generate.
    pub events: usize,
    /// Relative weight of kill events (vs revive/join).
    pub kill_weight: f64,
    /// Relative weight of revive events.
    pub revive_weight: f64,
    /// Relative weight of join events.
    pub join_weight: f64,
    /// At most this many joins total (bounds cluster growth).
    pub max_joins: usize,
}

impl Default for ChaosCfg {
    fn default() -> Self {
        Self {
            events: 6,
            kill_weight: 1.0,
            revive_weight: 1.0,
            join_weight: 0.5,
            max_joins: 2,
        }
    }
}

/// A deterministic script of membership events, sorted by time (ties keep
/// insertion order). See the module docs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosSchedule {
    events: Vec<ChaosEvent>,
}

impl ChaosSchedule {
    /// An empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a kill of `w` at `at` (builder style).
    pub fn kill(mut self, at: VTime, w: WorkerId) -> Self {
        self.insert(ChaosEvent {
            at,
            action: ChaosAction::Kill(w),
        });
        self
    }

    /// Adds a revival of `w` at `at` (builder style).
    pub fn revive(mut self, at: VTime, w: WorkerId) -> Self {
        self.insert(ChaosEvent {
            at,
            action: ChaosAction::Revive(w),
        });
        self
    }

    /// Adds a join at `at` (builder style).
    pub fn join(mut self, at: VTime) -> Self {
        self.insert(ChaosEvent {
            at,
            action: ChaosAction::Join,
        });
        self
    }

    fn insert(&mut self, ev: ChaosEvent) {
        // Stable insert keeping time order; same-instant events keep the
        // order they were added, which the engines' queues preserve.
        let pos = self.events.partition_point(|e| e.at <= ev.at);
        self.events.insert(pos, ev);
    }

    /// The events in time order.
    pub fn events(&self) -> &[ChaosEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the schedule has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Kill / revive / join counts (for reporting).
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut k = (0, 0, 0);
        for e in &self.events {
            match e.action {
                ChaosAction::Kill(_) => k.0 += 1,
                ChaosAction::Revive(_) => k.1 += 1,
                ChaosAction::Join => k.2 += 1,
            }
        }
        k
    }

    /// A seeded random schedule of `cfg.events` events over `(0, horizon)`
    /// for a cluster starting with `workers` workers. Always *valid*: kills
    /// target currently-alive workers and never the last one; revivals
    /// target currently-dead workers; joins are bounded by `cfg.max_joins`.
    /// Deterministic in `(seed, workers, horizon, cfg)`.
    ///
    /// # Panics
    /// Panics if `workers == 0` or `horizon` is the epoch.
    pub fn random(seed: u64, workers: usize, horizon: VTime, cfg: &ChaosCfg) -> Self {
        assert!(workers > 0, "chaos schedule needs a nonempty cluster");
        assert!(horizon > VTime::ZERO, "chaos horizon must be positive");
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xC4A0_5C4A_05C4_A05C);
        let mut alive: Vec<WorkerId> = (0..workers).collect();
        let mut dead: Vec<WorkerId> = Vec::new();
        let mut next_id = workers;
        let mut joins = 0usize;
        let mut out = Self::new();
        if cfg.events == 0 {
            return out;
        }
        // Event instants: sorted uniform draws over (0, horizon). The
        // upper bound is clamped so a 1µs horizon degenerates to "every
        // event at t=1" instead of an empty sample range.
        let hi = horizon.as_micros().max(2);
        let mut times: Vec<u64> = (0..cfg.events).map(|_| rng.gen_range(1..hi)).collect();
        times.sort_unstable();
        for t in times {
            let at = VTime::from_micros(t);
            let can_kill = alive.len() > 1;
            let can_revive = !dead.is_empty();
            let can_join = joins < cfg.max_joins;
            let wk = if can_kill { cfg.kill_weight } else { 0.0 };
            let wr = if can_revive { cfg.revive_weight } else { 0.0 };
            let wj = if can_join { cfg.join_weight } else { 0.0 };
            let total = wk + wr + wj;
            if total <= 0.0 {
                continue;
            }
            let draw = rng.gen_range(0.0..total);
            if draw < wk {
                let i = rng.gen_range(0..alive.len());
                let w = alive.swap_remove(i);
                dead.push(w);
                out.insert(ChaosEvent {
                    at,
                    action: ChaosAction::Kill(w),
                });
            } else if draw < wk + wr {
                let i = rng.gen_range(0..dead.len());
                let w = dead.swap_remove(i);
                alive.push(w);
                out.insert(ChaosEvent {
                    at,
                    action: ChaosAction::Revive(w),
                });
            } else {
                alive.push(next_id);
                next_id += 1;
                joins += 1;
                out.insert(ChaosEvent {
                    at,
                    action: ChaosAction::Join,
                });
            }
        }
        out
    }

    /// The production-cluster churn preset: ~25 % of `workers` are killed,
    /// staggered through the first half of `horizon`; every casualty is
    /// revived after a downtime of ~25 % of `horizon`; one new worker joins
    /// at the midpoint. Deterministic in `(seed, workers, horizon)`.
    ///
    /// # Panics
    /// Panics if `workers < 2` (someone must survive every kill).
    pub fn pcs_churn(seed: u64, workers: usize, horizon: VTime) -> Self {
        assert!(workers >= 2, "pcs_churn needs at least 2 workers");
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
        let n_kill = ((workers as f64 * 0.25).round() as usize).clamp(1, workers - 1);
        // Choose victims by partial Fisher-Yates, like the PCS assignment.
        let mut ids: Vec<WorkerId> = (0..workers).collect();
        for i in 0..n_kill {
            let j = rng.gen_range(i..workers);
            ids.swap(i, j);
        }
        let h = horizon.as_micros();
        let downtime = h / 4;
        let mut s = Self::new();
        for (k, &w) in ids.iter().take(n_kill).enumerate() {
            // Staggered kills through the first half of the horizon.
            let at = h * (k as u64 + 1) / (2 * (n_kill as u64 + 1));
            let at = at.max(1);
            s = s
                .kill(VTime::from_micros(at), w)
                .revive(VTime::from_micros(at + downtime), w);
        }
        s.join(VTime::from_micros(h / 2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_keeps_time_order() {
        let s = ChaosSchedule::new()
            .revive(VTime::from_micros(30), 1)
            .kill(VTime::from_micros(10), 1)
            .join(VTime::from_micros(20));
        let times: Vec<u64> = s.events().iter().map(|e| e.at.as_micros()).collect();
        assert_eq!(times, vec![10, 20, 30]);
        assert_eq!(s.counts(), (1, 1, 1));
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn same_instant_events_keep_insertion_order() {
        let t = VTime::from_micros(5);
        let s = ChaosSchedule::new().kill(t, 0).revive(t, 0).join(t);
        assert_eq!(s.events()[0].action, ChaosAction::Kill(0));
        assert_eq!(s.events()[1].action, ChaosAction::Revive(0));
        assert_eq!(s.events()[2].action, ChaosAction::Join);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let cfg = ChaosCfg::default();
        let a = ChaosSchedule::random(7, 4, VTime::from_micros(1_000_000), &cfg);
        let b = ChaosSchedule::random(7, 4, VTime::from_micros(1_000_000), &cfg);
        assert_eq!(a, b);
        let c = ChaosSchedule::random(8, 4, VTime::from_micros(1_000_000), &cfg);
        assert_ne!(a, c, "different seeds should differ w.h.p.");
    }

    #[test]
    fn random_schedules_are_valid() {
        // Replay the membership automaton: kills never empty the cluster,
        // revivals only target dead workers.
        for seed in 0..50u64 {
            let cfg = ChaosCfg {
                events: 12,
                ..ChaosCfg::default()
            };
            let s = ChaosSchedule::random(seed, 3, VTime::from_micros(500_000), &cfg);
            let mut alive: Vec<bool> = vec![true; 3];
            for e in s.events() {
                match e.action {
                    ChaosAction::Kill(w) => {
                        assert!(alive[w], "seed {seed}: kill of dead worker {w}");
                        alive[w] = false;
                        assert!(
                            alive.iter().any(|&a| a),
                            "seed {seed}: schedule empties the cluster"
                        );
                    }
                    ChaosAction::Revive(w) => {
                        assert!(!alive[w], "seed {seed}: revive of alive worker {w}");
                        alive[w] = true;
                    }
                    ChaosAction::Join => alive.push(true),
                }
            }
        }
    }

    #[test]
    fn random_tolerates_a_one_microsecond_horizon() {
        let s = ChaosSchedule::random(1, 2, VTime::from_micros(1), &ChaosCfg::default());
        for e in s.events() {
            assert_eq!(e.at.as_micros(), 1, "degenerate horizon pins events at t=1");
        }
    }

    #[test]
    fn pcs_churn_kills_quarter_and_revives_all() {
        let s = ChaosSchedule::pcs_churn(42, 8, VTime::from_micros(1_000_000));
        let (kills, revives, joins) = s.counts();
        assert_eq!(kills, 2, "25% of 8 workers");
        assert_eq!(revives, kills, "every casualty is replaced");
        assert_eq!(joins, 1);
        // Each kill precedes its own revival.
        for e in s.events() {
            if let ChaosAction::Revive(w) = e.action {
                let killed_at = s
                    .events()
                    .iter()
                    .find(|k| k.action == ChaosAction::Kill(w))
                    .expect("revived worker was killed")
                    .at;
                assert!(killed_at < e.at);
            }
        }
    }

    #[test]
    fn pcs_churn_is_deterministic() {
        let a = ChaosSchedule::pcs_churn(3, 6, VTime::from_micros(300_000));
        let b = ChaosSchedule::pcs_churn(3, 6, VTime::from_micros(300_000));
        assert_eq!(a, b);
    }
}
