//! Virtual time: `u64` microseconds since simulation start.
//!
//! All scheduling math in the simulated backend uses these newtypes instead
//! of raw integers so durations and instants cannot be confused, and so the
//! bench harnesses print milliseconds exactly like the paper's figures.

use std::ops::{Add, AddAssign, Sub};

/// An instant in virtual time (microseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VTime(u64);

/// A span of virtual time (microseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VDur(u64);

impl VTime {
    /// The simulation epoch.
    pub const ZERO: VTime = VTime(0);

    /// Constructs from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        VTime(us)
    }

    /// Microseconds since epoch.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since epoch (the unit of the paper's time axes).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Duration since `earlier`; saturates to zero rather than underflowing.
    #[inline]
    pub fn saturating_since(self, earlier: VTime) -> VDur {
        VDur(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: VTime) -> VTime {
        VTime(self.0.max(other.0))
    }
}

impl VDur {
    /// The zero duration.
    pub const ZERO: VDur = VDur(0);

    /// Constructs from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        VDur(us)
    }

    /// Constructs from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        VDur(ms * 1_000)
    }

    /// Constructs from fractional seconds (rounds to microseconds, clamped
    /// at zero).
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        VDur((secs.max(0.0) * 1e6).round() as u64)
    }

    /// Microseconds.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds as a float.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Scales by a nonnegative factor (rounds to microseconds).
    #[inline]
    pub fn mul_f64(self, k: f64) -> VDur {
        debug_assert!(k >= 0.0, "negative duration scale");
        VDur((self.0 as f64 * k).round() as u64)
    }
}

impl Add<VDur> for VTime {
    type Output = VTime;
    #[inline]
    fn add(self, rhs: VDur) -> VTime {
        VTime(self.0 + rhs.0)
    }
}

impl AddAssign<VDur> for VTime {
    #[inline]
    fn add_assign(&mut self, rhs: VDur) {
        self.0 += rhs.0;
    }
}

impl Add for VDur {
    type Output = VDur;
    #[inline]
    fn add(self, rhs: VDur) -> VDur {
        VDur(self.0 + rhs.0)
    }
}

impl AddAssign for VDur {
    #[inline]
    fn add_assign(&mut self, rhs: VDur) {
        self.0 += rhs.0;
    }
}

impl Sub for VTime {
    type Output = VDur;
    /// Panics on underflow in debug builds; prefer
    /// [`VTime::saturating_since`] when ordering is not guaranteed.
    #[inline]
    fn sub(self, rhs: VTime) -> VDur {
        VDur(self.0 - rhs.0)
    }
}

impl std::iter::Sum for VDur {
    fn sum<I: Iterator<Item = VDur>>(iter: I) -> VDur {
        iter.fold(VDur::ZERO, |a, b| a + b)
    }
}

impl std::fmt::Display for VTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl std::fmt::Display for VDur {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_round_trip() {
        let t = VTime::from_micros(1_500);
        let d = VDur::from_millis(2);
        assert_eq!((t + d).as_micros(), 3_500);
        assert_eq!((t + d) - t, d);
    }

    #[test]
    fn saturating_since_never_underflows() {
        let a = VTime::from_micros(10);
        let b = VTime::from_micros(50);
        assert_eq!(b.saturating_since(a).as_micros(), 40);
        assert_eq!(a.saturating_since(b), VDur::ZERO);
    }

    #[test]
    fn conversions() {
        assert_eq!(VDur::from_secs_f64(0.001).as_micros(), 1_000);
        assert_eq!(VDur::from_secs_f64(-5.0), VDur::ZERO);
        assert!((VTime::from_micros(2_500).as_millis_f64() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn scaling() {
        assert_eq!(VDur::from_micros(100).mul_f64(2.5).as_micros(), 250);
        assert_eq!(VDur::from_micros(100).mul_f64(0.0), VDur::ZERO);
    }

    #[test]
    fn sum_and_display() {
        let total: VDur = [VDur::from_millis(1), VDur::from_millis(2)]
            .into_iter()
            .sum();
        assert_eq!(total, VDur::from_millis(3));
        assert_eq!(format!("{total}"), "3.000ms");
    }
}
