//! Straggler delay models.
//!
//! Two models from the paper's evaluation plus hooks for custom patterns:
//!
//! * **Controlled Delay Straggler (CDS)**, §6.3: one designated worker is
//!   slowed by a fixed `intensity` — a delay of `intensity × task time`
//!   added to every task it runs ("a 100 % delay means the worker is
//!   executing jobs at half speed").
//! * **Production Cluster Stragglers (PCS)**: the empirical distribution
//!   reported for Microsoft Big and Google clusters — ~25 % of machines
//!   straggle; 80 % of stragglers have a uniformly random delay of
//!   150–250 % of the average task completion time; the remaining 20 % are
//!   *long-tail* workers delayed 250 % up to 10×. The paper instantiates
//!   this on 32 workers as 6 uniform stragglers + 2 long-tail workers, with
//!   the randomized delay seed fixed across repetitions; we reproduce that
//!   exactly.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::WorkerId;

/// Configuration of the production-cluster straggler pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct PcsConfig {
    /// Fraction of workers that are stragglers (paper: 0.25).
    pub straggler_fraction: f64,
    /// Fraction of stragglers that are long-tail (paper: 0.20).
    pub long_tail_fraction: f64,
    /// Uniform stragglers draw a per-task delay factor in this range
    /// (paper: 1.5–2.5, i.e. 150–250 % of average task time).
    pub uniform_range: (f64, f64),
    /// Long-tail workers draw in this range (paper: 2.5–10.0).
    pub long_tail_range: (f64, f64),
    /// Seed for both the straggler assignment and per-task draws.
    pub seed: u64,
}

impl PcsConfig {
    /// The paper's configuration with the given seed.
    pub fn paper(seed: u64) -> Self {
        Self {
            straggler_fraction: 0.25,
            long_tail_fraction: 0.20,
            uniform_range: (1.5, 2.5),
            long_tail_range: (2.5, 10.0),
            seed,
        }
    }
}

/// How a worker's class affects its task durations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StragglerClass {
    /// No injected delay.
    Normal,
    /// Uniform 150–250 % straggler.
    Uniform,
    /// Long-tail straggler (250 %–10×).
    LongTail,
}

/// A straggler delay model: maps `(worker, task sequence number)` to a
/// multiplicative *total* duration factor (`1.0` = no delay; `2.0` = task
/// takes twice as long).
#[derive(Debug, Clone, PartialEq)]
pub enum DelayModel {
    /// No stragglers.
    None,
    /// One worker delayed by a fixed intensity: factor `1 + intensity`.
    ControlledDelay {
        /// Which worker straggles.
        worker: WorkerId,
        /// Delay as a fraction of task time (1.0 = 100 % = half speed).
        intensity: f64,
    },
    /// Production-cluster pattern (see [`PcsConfig`]).
    ProductionCluster(PcsConfig),
    /// Explicit per-worker constant factors (index = worker id; factors
    /// must be ≥ 1). Workers beyond the vector length get factor 1.
    PerWorker(Vec<f64>),
}

impl DelayModel {
    /// Builds the concrete per-cluster assignment for `n_workers` workers.
    pub fn assign(&self, n_workers: usize) -> DelayAssignment {
        match self {
            DelayModel::None => DelayAssignment {
                classes: vec![StragglerClass::Normal; n_workers],
                cds: None,
                per_worker: None,
                pcs: None,
            },
            DelayModel::ControlledDelay { worker, intensity } => {
                assert!(*worker < n_workers, "CDS worker {worker} out of range");
                assert!(*intensity >= 0.0, "CDS intensity must be nonnegative");
                DelayAssignment {
                    classes: vec![StragglerClass::Normal; n_workers],
                    cds: Some((*worker, *intensity)),
                    per_worker: None,
                    pcs: None,
                }
            }
            DelayModel::PerWorker(factors) => {
                assert!(
                    factors.iter().all(|&f| f >= 1.0),
                    "per-worker factors must be >= 1"
                );
                DelayAssignment {
                    classes: vec![StragglerClass::Normal; n_workers],
                    cds: None,
                    per_worker: Some(factors.clone()),
                    pcs: None,
                }
            }
            DelayModel::ProductionCluster(cfg) => {
                let mut rng = SmallRng::seed_from_u64(cfg.seed);
                let n_straggle = (n_workers as f64 * cfg.straggler_fraction).round() as usize;
                let n_long = (n_straggle as f64 * cfg.long_tail_fraction).round() as usize;
                // Choose straggler ids deterministically from the seed.
                let mut ids: Vec<WorkerId> = (0..n_workers).collect();
                // Partial Fisher-Yates for the first n_straggle slots.
                for i in 0..n_straggle.min(n_workers) {
                    let j = rng.gen_range(i..n_workers);
                    ids.swap(i, j);
                }
                let mut classes = vec![StragglerClass::Normal; n_workers];
                for (k, &w) in ids.iter().take(n_straggle).enumerate() {
                    classes[w] = if k < n_long {
                        StragglerClass::LongTail
                    } else {
                        StragglerClass::Uniform
                    };
                }
                DelayAssignment {
                    classes,
                    cds: None,
                    per_worker: None,
                    pcs: Some(cfg.clone()),
                }
            }
        }
    }
}

/// The per-cluster realization of a [`DelayModel`]: stable worker classes
/// plus deterministic per-task factor draws.
#[derive(Debug, Clone)]
pub struct DelayAssignment {
    classes: Vec<StragglerClass>,
    cds: Option<(WorkerId, f64)>,
    per_worker: Option<Vec<f64>>,
    pcs: Option<PcsConfig>,
}

impl DelayAssignment {
    /// The class assigned to `worker`.
    pub fn class(&self, worker: WorkerId) -> StragglerClass {
        self.classes
            .get(worker)
            .copied()
            .unwrap_or(StragglerClass::Normal)
    }

    /// Worker ids with a non-normal class (for reporting).
    pub fn stragglers(&self) -> Vec<WorkerId> {
        (0..self.classes.len())
            .filter(|&w| self.classes[w] != StragglerClass::Normal)
            .collect()
    }

    /// Total duration factor for the `task_seq`-th task executed by
    /// `worker`. Deterministic in `(model seed, worker, task_seq)`.
    pub fn factor(&self, worker: WorkerId, task_seq: u64) -> f64 {
        if let Some((w, intensity)) = self.cds {
            return if w == worker { 1.0 + intensity } else { 1.0 };
        }
        if let Some(ref f) = self.per_worker {
            return f.get(worker).copied().unwrap_or(1.0);
        }
        if let Some(ref cfg) = self.pcs {
            let (lo, hi) = match self.class(worker) {
                StragglerClass::Normal => return 1.0,
                StragglerClass::Uniform => cfg.uniform_range,
                StragglerClass::LongTail => cfg.long_tail_range,
            };
            // Per-task factor from a stream keyed by (seed, worker, seq):
            // independent across tasks, reproducible across runs.
            let key = cfg
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((worker as u64) << 32)
                .wrapping_add(task_seq);
            let mut rng = SmallRng::seed_from_u64(key);
            return rng.gen_range(lo..hi);
        }
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_model_is_identity() {
        let a = DelayModel::None.assign(4);
        for w in 0..4 {
            assert_eq!(a.factor(w, 0), 1.0);
            assert_eq!(a.class(w), StragglerClass::Normal);
        }
        assert!(a.stragglers().is_empty());
    }

    #[test]
    fn cds_delays_only_target() {
        let a = DelayModel::ControlledDelay {
            worker: 2,
            intensity: 1.0,
        }
        .assign(8);
        assert_eq!(a.factor(2, 5), 2.0);
        for w in [0, 1, 3, 7] {
            assert_eq!(a.factor(w, 5), 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cds_worker_out_of_range_panics() {
        DelayModel::ControlledDelay {
            worker: 8,
            intensity: 0.3,
        }
        .assign(8);
    }

    #[test]
    fn pcs_matches_paper_counts_on_32_workers() {
        let a = DelayModel::ProductionCluster(PcsConfig::paper(42)).assign(32);
        let uniform = (0..32)
            .filter(|&w| a.class(w) == StragglerClass::Uniform)
            .count();
        let long = (0..32)
            .filter(|&w| a.class(w) == StragglerClass::LongTail)
            .count();
        // Paper: 6 uniform + 2 long-tail on 32 workers.
        assert_eq!(uniform, 6);
        assert_eq!(long, 2);
    }

    #[test]
    fn pcs_factors_within_declared_ranges() {
        let a = DelayModel::ProductionCluster(PcsConfig::paper(7)).assign(32);
        for w in 0..32 {
            for seq in 0..50 {
                let f = a.factor(w, seq);
                match a.class(w) {
                    StragglerClass::Normal => assert_eq!(f, 1.0),
                    StragglerClass::Uniform => assert!((1.5..2.5).contains(&f), "{f}"),
                    StragglerClass::LongTail => assert!((2.5..10.0).contains(&f), "{f}"),
                }
            }
        }
    }

    #[test]
    fn pcs_is_deterministic_per_seed() {
        let a = DelayModel::ProductionCluster(PcsConfig::paper(9)).assign(32);
        let b = DelayModel::ProductionCluster(PcsConfig::paper(9)).assign(32);
        for w in 0..32 {
            assert_eq!(a.class(w), b.class(w));
            for seq in 0..10 {
                assert_eq!(a.factor(w, seq), b.factor(w, seq));
            }
        }
        let c = DelayModel::ProductionCluster(PcsConfig::paper(10)).assign(32);
        let same = (0..32).all(|w| a.class(w) == c.class(w));
        assert!(
            !same,
            "different seeds should move stragglers with overwhelming probability"
        );
    }

    #[test]
    fn pcs_factors_vary_across_tasks() {
        let a = DelayModel::ProductionCluster(PcsConfig::paper(11)).assign(32);
        let straggler = a.stragglers()[0];
        let f0 = a.factor(straggler, 0);
        let distinct = (1..20).any(|s| a.factor(straggler, s) != f0);
        assert!(distinct, "per-task factors should vary");
    }

    #[test]
    fn per_worker_model() {
        let a = DelayModel::PerWorker(vec![1.0, 3.0]).assign(4);
        assert_eq!(a.factor(0, 0), 1.0);
        assert_eq!(a.factor(1, 0), 3.0);
        assert_eq!(a.factor(3, 0), 1.0); // beyond vector: no delay
    }
}
