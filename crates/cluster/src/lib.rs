//! # async-cluster
//!
//! Cluster substrate for the ASYNC reproduction.
//!
//! The paper evaluates on an XSEDE Comet cluster with injected stragglers:
//! a *Controlled Delay Straggler* (one worker slowed by 0–100 % of its
//! iteration time, §6.3) and *Production Cluster Stragglers* (the empirical
//! Microsoft/Google distribution: 25 % of machines straggle; 80 % of those
//! uniformly at 150–250 % of the average task time, 20 % long-tail up to
//! 10×). We have no cluster, so this crate provides the simulation
//! substrate those experiments run on:
//!
//! * [`time`]: microsecond-resolution virtual time ([`VTime`], [`VDur`]);
//! * [`straggler`]: the delay models, seeded and deterministic;
//! * [`profile`]: per-worker speed and communication cost models;
//! * [`event`]: a deterministic discrete-event queue (ties broken by
//!   insertion order) used by the simulated engine backend;
//! * [`metrics`]: wait-time recorders and convergence traces — the
//!   quantities plotted in Figures 3–8 and Tables 3;
//! * [`chaos`]: seeded, deterministic membership-churn schedules
//!   (kill / revive / join over virtual time) for elasticity experiments.

pub mod chaos;
pub mod event;
pub mod metrics;
pub mod profile;
pub mod straggler;
pub mod time;

pub use chaos::{ChaosAction, ChaosCfg, ChaosEvent, ChaosSchedule};
pub use event::EventQueue;
pub use metrics::{ConvergenceTrace, WaitTimeRecorder};
pub use profile::{ClusterSpec, CommModel, WorkerProfile};
pub use straggler::{DelayModel, PcsConfig};
pub use time::{VDur, VTime};

/// Identifies one worker (executor) in the cluster, dense from 0.
pub type WorkerId = usize;
