//! # async-optim
//!
//! Distributed optimization algorithms on the ASYNC engine (§5 of the
//! paper): an [`AsyncSolver`] abstraction plus the two solvers the paper
//! implements in its Listings —
//!
//! * [`Asgd`] — asynchronous mini-batch SGD (Listing 3): collect a
//!   gradient, apply it, rebroadcast, refill whichever workers the barrier
//!   admits;
//! * [`Asaga`] — asynchronous SAGA with history (Listing 4 / Algorithm 4):
//!   variance reduction against per-sample historical models, shipped as
//!   version IDs through the `ASYNCbroadcaster` instead of full tables —
//!   in the spirit of the semi-stochastic history methods of Zhang et al.
//!
//! Both run under ASP, BSP, SSP or custom barriers
//! ([`async_core::BarrierFilter`]). ASGD works on either engine backend;
//! ASAGA's history semantics (version IDs attached at submission) are
//! specified against the deterministic `SimEngine` — see the note in
//! [`asaga`]. `tests/barrier_e2e.rs` has end-to-end runs.

pub mod asaga;
pub mod asgd;
pub mod objective;
pub mod solver;

pub use asaga::Asaga;
pub use asgd::Asgd;
pub use objective::Objective;
pub use solver::{block_rdd, AsyncSolver, RunReport, SolverCfg};
