//! # async-optim
//!
//! Distributed optimization algorithms on the ASYNC engine (§5 of the
//! paper): an [`AsyncSolver`] abstraction plus the two solvers the paper
//! implements in its Listings —
//!
//! * [`Asgd`] — asynchronous mini-batch SGD (Listing 3): collect a
//!   gradient, apply it, rebroadcast, refill whichever workers the barrier
//!   admits;
//! * [`Asaga`] — asynchronous SAGA with history (Listing 4 / Algorithm 4):
//!   variance reduction against per-sample historical models, shipped as
//!   version IDs through the `ASYNCbroadcaster` instead of full tables —
//!   in the spirit of the semi-stochastic history methods of Zhang et al.;
//! * [`AsyncMsgd`] — momentum SGD that queries the `STAT` table on every
//!   consumed result and damps momentum (and optionally the step) by the
//!   observed staleness, the delay-adaptive rule the asynchrony literature
//!   recommends against stale heavy-ball divergence.
//!
//! All solvers run under ASP, BSP, SSP or custom barriers
//! ([`async_core::BarrierFilter`]) and evaluate gradients through the
//! dense-or-sparse [`async_linalg::GradDelta`] path: CSR partitions use
//! the sparse gather kernels and ship only the batch support. ASGD and
//! MSGD work on either engine backend; ASAGA's history semantics (version
//! IDs attached at submission) are specified against the deterministic
//! `SimEngine` — see the note in [`asaga`]. `tests/barrier_e2e.rs`,
//! `tests/msgd_e2e.rs` and `tests/sparse_e2e.rs` have end-to-end runs.
//!
//! All three solvers absorb server-side through the sharded absorption
//! pipeline ([`absorber::ShardedAbsorber`]): apply passes run
//! shard-parallel on a persistent thread pool
//! ([`SolverCfg::server_threads`] — bit-identical to the serial server
//! for any thread count), and waves of ready deltas can be folded and
//! applied fused ([`SolverCfg::absorb_batch`] — value-equivalent, one
//! snapshot push per wave).
//!
//! The solvers are *elastic*: they keep running through worker kills,
//! revivals, and mid-run joins (see `async_cluster::chaos` for churn
//! scripts), and [`checkpoint`] snapshots the server state —
//! bit-identical serialize/restore plus per-solver `resume_from` — so a
//! crashed driver resumes instead of restarting. `tests/chaos_e2e.rs`
//! and `tests/chaos_proptests.rs` exercise all of it end to end.
//!
//! Checkpoints become *durable* through [`durable`]: an atomic on-disk
//! generation store (temp file + fsync + rename, checksummed manifests),
//! a background checkpointer that captures snapshots off the hot path via
//! the read-pin API, and [`SolverCfg::durable_dir`]-driven auto-resume —
//! a restarted driver picks up the newest valid generation, re-seats the
//! broadcast ring at the crashed run's model version, and continues
//! bit-identically. [`durable::DiskFaultPlan`] injects torn writes,
//! failed fsyncs, bit rot, and dropped manifests to prove the recovery
//! paths; `tests/durable_e2e.rs` and `tests/durable_proptests.rs` drive
//! it.

#![deny(missing_docs)]

pub mod absorber;
pub mod asaga;
pub mod asgd;
pub mod checkpoint;
pub mod compression;
pub mod durable;
pub mod msgd;
pub mod objective;
pub mod remote;
pub mod scratch;
pub mod serving;
pub mod solver;

pub use absorber::ShardedAbsorber;
pub use asaga::Asaga;
pub use asgd::Asgd;
pub use checkpoint::{Checkpoint, CheckpointError, SolverHistory};
pub use compression::{CompressCfg, CompressorBank};
pub use durable::{
    CheckpointStore, DiskFault, DiskFaultPlan, DurableSession, DurableStats, StoreCounters,
};
pub use msgd::AsyncMsgd;
pub use objective::Objective;
pub use remote::{worker_registry, EF_NS, ROUTINE_ASAGA, ROUTINE_GRAD};
pub use scratch::{ScratchPool, TaskScratch};
pub use serving::{LoggedQuery, PublishedModel, ServeCounters, ServeFeed, ServeStats};
pub use solver::{block_rdd, AsyncSolver, RunReport, SolverCfg, SolverCfgBuilder, SolverCfgError};
