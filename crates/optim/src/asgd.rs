//! Asynchronous SGD — the paper's Listing 3 walk-through.
//!
//! Workers compute mini-batch gradients against the model version captured
//! at task submission; the server applies each collected gradient as soon
//! as it arrives (plus the ridge term), bumps the model version, pushes
//! the new model through the history broadcast (only the 8-byte version ID
//! travels with later tasks; workers fetch-and-cache values on miss), and
//! refills whichever workers the barrier filter admits.
//!
//! Gradients travel as [`GradDelta`]s: over CSR partitions the task runs
//! the sparse gather kernel and ships only the batch support, which the
//! server scatters onto the model without densifying — the sparse fast
//! path. Dense partitions use the dense kernel, bit-identical to the
//! original implementation. The task shape and wave/pin machinery are
//! shared with [`crate::AsyncMsgd`] in [`crate::solver`].

use async_cluster::ConvergenceTrace;
use async_core::AsyncContext;
use async_data::Dataset;
use async_linalg::GradDelta;
use sparklet::Payload;

use crate::checkpoint::{Checkpoint, SolverHistory};
use crate::objective::Objective;
use crate::scratch::ScratchPool;
use crate::solver::{
    block_rdd, drain_grad_tasks, submit_grad_wave, AsyncSolver, GradMsg, PinLedger, RunReport,
    SolverCfg,
};

/// Asynchronous stochastic gradient descent.
#[derive(Debug, Clone)]
pub struct Asgd {
    /// The objective being minimized.
    pub objective: Objective,
    resume: Option<Checkpoint>,
}

impl Asgd {
    /// An ASGD solver for `objective`.
    pub fn new(objective: Objective) -> Self {
        Self {
            objective,
            resume: None,
        }
    }

    /// Seeds the next [`AsyncSolver::run`] from a checkpoint: the server
    /// model restores bit-identically and newly captured checkpoints keep
    /// counting updates from the checkpoint's total.
    ///
    /// Validated against the dataset at `run` time, which panics on a
    /// solver/dimension/history mismatch.
    pub fn resume_from(mut self, ckpt: Checkpoint) -> Self {
        self.resume = Some(ckpt);
        self
    }
}

impl AsyncSolver for Asgd {
    fn name(&self) -> &'static str {
        "asgd"
    }

    fn run(&mut self, ctx: &mut AsyncContext, dataset: &Dataset, cfg: &SolverCfg) -> RunReport {
        assert_eq!(ctx.pending(), 0, "asgd: context has in-flight tasks");
        let (blocks, rdd) = block_rdd(ctx, dataset, cfg);
        let dcols = dataset.cols();
        let mean_rows = dataset.rows() / blocks.len().max(1);
        let minibatch_hint = ((mean_rows as f64 * cfg.batch_fraction).ceil() as u64).max(1);

        // Resume from a checkpoint when one is installed: the server model
        // restores bit-identically; plain ASGD has no auxiliary history.
        let (mut w, base_updates) = match self.resume.take() {
            Some(ckpt) => {
                ckpt.validate_for("asgd", dcols)
                    .expect("asgd: incompatible resume checkpoint");
                assert!(
                    matches!(ckpt.history, SolverHistory::None),
                    "asgd: checkpoint carries foreign solver history"
                );
                (ckpt.w, ckpt.updates)
            }
            None => (vec![0.0; dcols], 0),
        };
        // No per-sample history in plain ASGD: the sample universe is
        // empty, so superseded model versions prune as soon as no task
        // needs them.
        let bcast = ctx.async_broadcast(w.clone(), 0);
        if cfg.bcast_ring > 0 {
            bcast.enable_incremental(cfg.bcast_ring);
        }
        // Steady-state buffer recycling: gradients, sampling buffers, and
        // the result deltas all cycle through the pool.
        let pool = ScratchPool::new();

        let mut trace = ConvergenceTrace::new();
        let f0 = self.objective.full_objective(cfg.eval_threads, dataset, &w);
        trace.push(ctx.now(), f0 - cfg.baseline);

        // In-flight pin bookkeeping: entries cleared on consumption;
        // leftovers (tasks lost to worker failure) released at run end.
        let mut pinned = PinLedger::new(ctx.workers());
        let mut checkpoints = Vec::new();
        // Count updates relative to the context's starting version so a
        // reused (but drained) context still runs a full budget.
        let start_version = ctx.version();

        let v0 = ctx.version();
        let ws = submit_grad_wave(
            ctx,
            &rdd,
            &bcast,
            cfg,
            minibatch_hint,
            self.objective,
            &pool,
        );
        pinned.record_wave(v0, &ws);

        let mut updates = 0u64;
        let mut tasks_completed = 0u64;
        let mut max_staleness = 0u64;
        let mut grad_entries = 0u64;
        let mut result_bytes = 0u64;
        let mut wall_clock = ctx.now();
        while updates < cfg.max_updates {
            let Some(t) = ctx.collect::<GradMsg>() else {
                // Total stall: every in-flight task was lost to failures.
                // If chaos has since revived or joined workers, a fresh
                // wave restarts the run; otherwise the cluster is dead.
                let v = ctx.version();
                let ws = submit_grad_wave(
                    ctx,
                    &rdd,
                    &bcast,
                    cfg,
                    minibatch_hint,
                    self.objective,
                    &pool,
                );
                if ws.is_empty() {
                    break;
                }
                pinned.record_wave(v, &ws);
                continue;
            };
            tasks_completed += 1;
            max_staleness = max_staleness.max(t.attrs.staleness);
            grad_entries += t.value.entries;
            result_bytes += t.value.g.encoded_len();
            bcast.unpin(t.attrs.issued_version);
            pinned.consume(t.attrs.worker, t.attrs.issued_version);
            let damp = if cfg.staleness_damping {
                1.0 / (1.0 + t.attrs.staleness as f64)
            } else {
                1.0
            };
            let lambda = self.objective.lambda();
            // True when this update's change support is exactly the
            // gradient's sparse support — the precondition for declaring a
            // sparse version diff to the incremental broadcast.
            let mut sparse_support = false;
            match &t.value.g {
                GradDelta::Dense(g) => {
                    for i in 0..dcols {
                        w[i] -= cfg.step * damp * (g[i] + lambda * w[i]);
                    }
                }
                GradDelta::Sparse(_) => {
                    // Ridge shrinkage over every coordinate, then scatter
                    // the data gradient onto its support only. Without a
                    // ridge term the shrink is an exact no-op, so skipping
                    // it leaves untouched coordinates bit-unchanged — which
                    // is what makes the sparse version diff exact.
                    let shrink = cfg.step * damp * lambda;
                    if shrink != 0.0 {
                        for wi in w.iter_mut() {
                            *wi -= shrink * *wi;
                        }
                    } else {
                        sparse_support = true;
                    }
                    t.value.g.axpy_into(-(cfg.step * damp), &mut w);
                }
            }
            updates = ctx.advance_version() - start_version;
            if sparse_support {
                bcast.push_snapshot_diff(&w, &t.value.g);
            } else {
                bcast.push_snapshot(&w);
            }
            pool.recycle_delta(t.value.g);
            wall_clock = ctx.now();
            if cfg.eval_every > 0 && updates.is_multiple_of(cfg.eval_every) {
                let f = self.objective.full_objective(cfg.eval_threads, dataset, &w);
                trace.push(wall_clock, f - cfg.baseline);
            }
            if cfg.checkpoint_every > 0 && updates.is_multiple_of(cfg.checkpoint_every) {
                checkpoints.push(Checkpoint {
                    solver: "asgd".to_string(),
                    updates: base_updates + updates,
                    w: w.clone(),
                    history: SolverHistory::None,
                });
            }
            let v = ctx.version();
            let ws = submit_grad_wave(
                ctx,
                &rdd,
                &bcast,
                cfg,
                minibatch_hint,
                self.objective,
                &pool,
            );
            pinned.record_wave(v, &ws);
        }

        let final_objective = self.objective.full_objective(cfg.eval_threads, dataset, &w);
        trace.push(wall_clock, final_objective - cfg.baseline);

        drain_grad_tasks(ctx, &bcast, pinned);

        RunReport {
            trace,
            updates,
            tasks_completed,
            max_staleness,
            wall_clock,
            mean_wait: ctx.driver().wait_recorder().overall_mean(),
            bytes_shipped: ctx.driver().total_bytes_shipped(),
            grad_entries,
            result_bytes,
            worker_clocks: ctx.stat().workers.iter().map(|s| s.clock).collect(),
            final_w: w,
            final_objective,
            checkpoints,
        }
    }
}
