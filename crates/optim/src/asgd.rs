//! Asynchronous SGD — the paper's Listing 3 walk-through.
//!
//! Workers compute mini-batch gradients against the model version captured
//! at task submission; the server applies each collected gradient as soon
//! as it arrives (plus the ridge term), bumps the model version, pushes
//! the new model through the history broadcast (only the 8-byte version ID
//! travels with later tasks; workers fetch-and-cache values on miss), and
//! refills whichever workers the barrier filter admits.
//!
//! Gradients travel as [`GradDelta`]s: over CSR partitions the task runs
//! the sparse gather kernel and ships only the batch support, which the
//! server scatters onto the model without densifying — the sparse fast
//! path. Dense partitions use the dense kernel, bit-identical to the
//! original implementation. The task shape and wave/pin machinery are
//! shared with [`crate::AsyncMsgd`] in [`crate::solver`].

use async_cluster::ConvergenceTrace;
use async_core::{AsyncContext, Tagged};
use async_data::Dataset;
use async_linalg::GradDelta;

use crate::absorber::ShardedAbsorber;
use crate::checkpoint::{Checkpoint, SolverHistory};
use crate::compression::{CompressCfg, CompressorBank};
use crate::durable::{DurableSession, DurableStats};
use crate::objective::Objective;
use crate::scratch::ScratchPool;
use crate::serving::{PublishedModel, ServeCounters};
use crate::solver::{
    begin_supervised, block_rdd, collect_wave, crossed_multiple, drain_grad_tasks,
    stalled_should_wait, submit_grad_wave, wave_admitted, AsyncSolver, GradMsg, PinLedger,
    RunReport, SolverCfg,
};

/// Asynchronous stochastic gradient descent.
#[derive(Debug, Clone)]
pub struct Asgd {
    /// The objective being minimized.
    pub objective: Objective,
    resume: Option<Checkpoint>,
    bank: Option<CompressorBank>,
}

impl Asgd {
    /// An ASGD solver for `objective`.
    pub fn new(objective: Objective) -> Self {
        Self {
            objective,
            resume: None,
            bank: None,
        }
    }

    /// Injects the [`CompressorBank`] the next run's tasks compress
    /// through (only consulted when [`crate::SolverCfg::compress`] is on).
    /// Tests inject a tracked bank here and inspect the error-feedback
    /// residuals after the run; by default each run builds its own.
    pub fn with_compressor_bank(mut self, bank: CompressorBank) -> Self {
        self.bank = Some(bank);
        self
    }

    /// Seeds the next [`AsyncSolver::run`] from a checkpoint: the server
    /// model restores bit-identically and newly captured checkpoints keep
    /// counting updates from the checkpoint's total.
    ///
    /// Validated against the dataset at `run` time, which panics on a
    /// solver/dimension/history mismatch.
    pub fn resume_from(mut self, ckpt: Checkpoint) -> Self {
        self.resume = Some(ckpt);
        self
    }
}

impl AsyncSolver for Asgd {
    fn name(&self) -> &'static str {
        "asgd"
    }

    fn run(&mut self, ctx: &mut AsyncContext, dataset: &Dataset, cfg: &SolverCfg) -> RunReport {
        assert_eq!(ctx.pending(), 0, "asgd: context has in-flight tasks");
        let (lost0, retried0) = begin_supervised(ctx, cfg);
        let (blocks, rdd) = block_rdd(ctx, dataset, cfg);
        let dcols = dataset.cols();
        let mean_rows = dataset.rows() / blocks.len().max(1);
        let minibatch_hint = ((mean_rows as f64 * cfg.batch_fraction).ceil() as u64).max(1);

        // Durability: open the store (and its background writer) when
        // configured. An explicit `resume_from` takes precedence over the
        // store's newest valid generation; a durable auto-resume completes
        // the crashed run's lineage budget instead of adding a fresh one.
        let mut durable = cfg.durable_dir.as_deref().map(|dir| {
            DurableSession::open(dir).expect("asgd: cannot open durable checkpoint store")
        });
        let explicit = self.resume.take();
        let from_store = explicit.is_none();
        let resume = explicit.or_else(|| durable.as_mut().and_then(DurableSession::take_resume));

        // Resume from a checkpoint when one is installed: the server model
        // restores bit-identically; plain ASGD has no auxiliary history.
        let (mut w, base_updates, resumed) = match resume {
            Some(ckpt) => {
                ckpt.validate_for("asgd", dcols)
                    .expect("asgd: incompatible resume checkpoint");
                assert!(
                    matches!(ckpt.history, SolverHistory::None),
                    "asgd: checkpoint carries foreign solver history"
                );
                for warning in cfg.lint_resume(&ckpt) {
                    eprintln!("asgd resume: {warning}");
                }
                // Continue the crashed run's version numbering: per-task
                // RNG streams key on (seed, version, part), so re-seating
                // is what makes the resumed trajectory line up with the
                // uninterrupted one.
                ctx.reseat_version(ckpt.version);
                (ckpt.w, ckpt.updates, Some((ckpt.version, ckpt.residuals)))
            }
            None => (vec![0.0; dcols], 0, None),
        };
        let budget = if from_store && resumed.is_some() {
            cfg.max_updates.saturating_sub(base_updates)
        } else {
            cfg.max_updates
        };
        // No per-sample history in plain ASGD: the sample universe is
        // empty, so superseded model versions prune as soon as no task
        // needs them. A resumed run seats the ring at the checkpoint's
        // version so broadcast IDs keep the crashed run's numbering.
        let bcast = match &resumed {
            Some((version, _)) => ctx.async_broadcast_at(w.clone(), 0, *version),
            None => ctx.async_broadcast(w.clone(), 0),
        };
        if cfg.bcast_ring > 0 {
            bcast.enable_incremental(cfg.bcast_ring);
            // With compression on, the same wire format also applies to
            // the driver → worker version-diff patches: codes carry the
            // target−base difference per changed coordinate.
            if let CompressCfg::TopK { quant, .. } = cfg.compress {
                bcast.set_patch_quant(quant);
            }
        }
        // Steady-state buffer recycling: gradients, sampling buffers, and
        // the result deltas all cycle through the pool.
        let pool = ScratchPool::new();
        let bank = self.bank.take().unwrap_or_default();
        // A resumed run reloads the crashed run's error-feedback residuals
        // so compression continues bit-identically instead of restarting
        // cold (see `SolverCfg::lint_resume` for the legacy case).
        if let Some((_, Some(residuals))) = &resumed {
            bank.restore_residuals(residuals);
        }
        // A bank reused across runs (or re-keyed after churn) keeps only
        // this run's partition universe — stale entries cannot accrete.
        bank.retain_parts_below(blocks.len().max(1));
        if let Some(feed) = cfg.serve_feed.as_ref() {
            feed.publish(PublishedModel {
                bcast: bcast.clone(),
                objective: self.objective,
                dim: dcols,
            });
        }

        let mut trace = ConvergenceTrace::new();
        let f0 = self.objective.full_objective(cfg.eval_threads, dataset, &w);
        trace.push(ctx.now(), f0 - cfg.baseline);

        // In-flight pin bookkeeping: entries cleared on consumption;
        // leftovers (tasks lost to worker failure) released at run end.
        let mut pinned = PinLedger::new(ctx.workers());
        let mut checkpoints = Vec::new();

        let v0 = ctx.version();
        let ws = submit_grad_wave(
            ctx,
            &rdd,
            &bcast,
            cfg,
            minibatch_hint,
            self.objective,
            &pool,
            &bank,
        );
        pinned.record_wave(v0, &ws);

        // The sharded server: apply passes (and snapshot memcpys) run
        // shard-parallel on its persistent pool; with absorb_batch > 1 a
        // wave of ready deltas is folded per shard and applied fused.
        let mut server = ShardedAbsorber::new(dcols, cfg.server_threads);
        let absorb_batch = cfg.absorb_batch.max(1);
        let mut wave: Vec<Tagged<GradMsg>> = Vec::new();
        let mut damps: Vec<f64> = Vec::new();

        let mut updates = 0u64;
        let mut tasks_completed = 0u64;
        let mut max_staleness = 0u64;
        let mut grad_entries = 0u64;
        let mut result_bytes = 0u64;
        let mut wall_clock = ctx.now();
        let lambda = self.objective.lambda();
        while updates < budget {
            // The degrade-policy gate: FailFast halts on any observed
            // death, Quorum/BestEffort wait toward scheduled recoveries
            // when the alive set is too thin to proceed.
            if !wave_admitted(ctx) {
                break;
            }
            let want = absorb_batch.min((budget - updates) as usize);
            collect_wave(ctx, want, &mut wave);
            if wave.is_empty() {
                // Total stall: every in-flight task was lost to failures.
                // If chaos has since revived or joined workers, a fresh
                // wave restarts the run; otherwise wait for a scheduled
                // recovery (supervised respawn, scripted revival) — and
                // only when none exists is the cluster truly dead.
                let v = ctx.version();
                let ws = submit_grad_wave(
                    ctx,
                    &rdd,
                    &bcast,
                    cfg,
                    minibatch_hint,
                    self.objective,
                    &pool,
                    &bank,
                );
                if ws.is_empty() {
                    if stalled_should_wait(ctx) {
                        continue;
                    }
                    break;
                }
                pinned.record_wave(v, &ws);
                continue;
            }
            damps.clear();
            for t in &wave {
                tasks_completed += 1;
                max_staleness = max_staleness.max(t.attrs.staleness);
                grad_entries += t.value.entries;
                result_bytes += t.value.wire_bytes;
                bcast.unpin(t.attrs.issued_version);
                pinned.consume(t.attrs.worker, t.attrs.issued_version);
                damps.push(if cfg.staleness_damping {
                    1.0 / (1.0 + t.attrs.staleness as f64)
                } else {
                    1.0
                });
            }
            // Single-delta waves take the exact serial expressions
            // (sharded — bit-identical for any thread count); larger
            // waves take the fused fold-then-apply pass. Either way the
            // returned flag marks an update whose change support is
            // exactly the gradients' sparse support — the precondition
            // for declaring a sparse version diff to the incremental
            // broadcast.
            let sparse_support = if wave.len() == 1 {
                server.asgd_step(&mut w, &wave[0].value.g, cfg.step * damps[0], lambda)
            } else {
                let n = wave.len();
                let deltas = &wave;
                server.asgd_wave(&mut w, n, |k| &deltas[k].value.g, &damps, cfg.step, lambda)
            };
            let prev_updates = updates;
            updates += wave.len() as u64;
            // One model version (and one snapshot push) per wave: with
            // absorb_batch = 1 this is exactly the historical
            // version-per-delta cadence.
            ctx.advance_version();
            let support = if !sparse_support {
                None
            } else if wave.len() == 1 {
                match &wave[0].value.g {
                    GradDelta::Sparse(s) => Some(s.indices()),
                    GradDelta::Dense(_) => None,
                }
            } else {
                Some(server.wave_support())
            };
            bcast.push_snapshot_sharded(&w, support, server.pool());
            for t in wave.drain(..) {
                pool.recycle_delta(t.value.g);
            }
            wall_clock = ctx.now();
            if cfg.eval_every > 0 && crossed_multiple(prev_updates, updates, cfg.eval_every) {
                let f = self.objective.full_objective(cfg.eval_threads, dataset, &w);
                trace.push(wall_clock, f - cfg.baseline);
            }
            if cfg.checkpoint_every > 0
                && crossed_multiple(prev_updates, updates, cfg.checkpoint_every)
            {
                let lineage = base_updates + updates;
                let version = ctx.version();
                checkpoints.push(Checkpoint {
                    solver: "asgd".to_string(),
                    updates: lineage,
                    version,
                    w: w.clone(),
                    history: SolverHistory::None,
                    residuals: Some(bank.export_residuals()),
                });
                if let Some(session) = durable.as_mut() {
                    // The just-pushed snapshot rides to the background
                    // writer as a read pin — no hot-path model clone.
                    if let Some(pin) = bcast.try_pin_read_at(version) {
                        session.submit(
                            lineage,
                            "asgd",
                            lineage,
                            version,
                            pin,
                            SolverHistory::None,
                            bank.export_residuals(),
                        );
                    }
                }
            }
            let v = ctx.version();
            let ws = submit_grad_wave(
                ctx,
                &rdd,
                &bcast,
                cfg,
                minibatch_hint,
                self.objective,
                &pool,
                &bank,
            );
            pinned.record_wave(v, &ws);
        }

        let final_objective = self.objective.full_objective(cfg.eval_threads, dataset, &w);
        trace.push(wall_clock, final_objective - cfg.baseline);

        // Final durable save (deduplicated when the run ended exactly on a
        // cadence boundary), then drain the writer before reporting.
        let durable_stats = match durable {
            Some(mut session) => {
                let lineage = base_updates + updates;
                if let Some(pin) = bcast.try_pin_read_at(ctx.version()) {
                    session.submit(
                        lineage,
                        "asgd",
                        lineage,
                        ctx.version(),
                        pin,
                        SolverHistory::None,
                        bank.export_residuals(),
                    );
                }
                session.finish()
            }
            None => DurableStats::default(),
        };

        drain_grad_tasks(ctx, &bcast, pinned);

        let serve = match cfg.serve_feed.as_ref() {
            Some(feed) => {
                feed.mark_done();
                feed.counters()
            }
            None => ServeCounters::default(),
        };

        RunReport {
            trace,
            updates,
            tasks_completed,
            max_staleness,
            wall_clock,
            mean_wait: ctx.driver().wait_recorder().overall_mean(),
            bytes_shipped: ctx.driver().total_bytes_shipped(),
            grad_entries,
            result_bytes,
            worker_clocks: ctx.stat().workers.iter().map(|s| s.clock).collect(),
            final_w: w,
            final_objective,
            checkpoints,
            serve,
            lost_tasks: ctx.lost_tasks() - lost0,
            retried_tasks: ctx.retried_tasks() - retried0,
            durable: durable_stats,
        }
    }
}
