//! Asynchronous SGD — the paper's Listing 3 walk-through.
//!
//! Workers compute mini-batch gradients against the model version captured
//! at task submission; the server applies each collected gradient as soon
//! as it arrives (plus the ridge term), bumps the model version, pushes
//! the new model through the history broadcast (only the 8-byte version ID
//! travels with later tasks; workers fetch-and-cache values on miss), and
//! refills whichever workers the barrier filter admits.

use async_cluster::ConvergenceTrace;
use async_core::{AsyncContext, SubmitOpts};
use async_data::sampler;
use async_data::{Block, Dataset};
use sparklet::{Rdd, WorkerCtx};

use crate::objective::Objective;
use crate::solver::{block_rdd, AsyncSolver, RunReport, SolverCfg};

/// A mini-batch gradient computed by one task.
struct GradMsg {
    /// `(1/b) Σ f'(xᵢᵀw, yᵢ)·xᵢ` over the sampled rows (no ridge term).
    g: Vec<f64>,
}

/// Asynchronous stochastic gradient descent.
#[derive(Debug, Clone, Copy)]
pub struct Asgd {
    /// The objective being minimized.
    pub objective: Objective,
}

impl Asgd {
    /// An ASGD solver for `objective`.
    pub fn new(objective: Objective) -> Self {
        Self { objective }
    }

    fn submit_wave(
        &self,
        ctx: &mut AsyncContext,
        rdd: &Rdd<Block>,
        bcast: &async_core::AsyncBcast<Vec<f64>>,
        cfg: &SolverCfg,
        minibatch_hint: u64,
    ) -> Vec<usize> {
        let handle = bcast.handle();
        let version = ctx.version();
        let obj = self.objective;
        let (seed, fraction) = (cfg.seed, cfg.batch_fraction);
        let task = move |wctx: &mut WorkerCtx, data: Vec<Block>, part: usize| {
            let block = &data[0];
            let w = handle.value(wctx);
            let mut rng = sampler::derive_rng(seed, version, part as u64);
            let mb = sampler::sample_fraction(&mut rng, block.rows(), fraction);
            let mut g = vec![0.0; block.cols()];
            obj.minibatch_grad(block, &mb.rows, &w, &mut g);
            GradMsg { g }
        };
        let opts = SubmitOpts {
            // Only the current model's version ID ships with the task.
            extra_bytes: async_core::AsyncBcast::<Vec<f64>>::id_ship_bytes(0),
            // A fused gradient pass costs ~2 work units per sampled nonzero.
            cost_scale: 2.0 * fraction,
            minibatch: minibatch_hint,
            ..SubmitOpts::default()
        };
        let submitted = ctx.async_reduce(rdd, &cfg.barrier, opts, task);
        // Pin the submission version per in-flight task so a queued task on
        // the threaded backend can never see its model version pruned.
        for _ in &submitted {
            bcast.pin(version);
        }
        submitted
    }
}

impl AsyncSolver for Asgd {
    fn name(&self) -> &'static str {
        "asgd"
    }

    fn run(&mut self, ctx: &mut AsyncContext, dataset: &Dataset, cfg: &SolverCfg) -> RunReport {
        assert_eq!(ctx.pending(), 0, "asgd: context has in-flight tasks");
        let (blocks, rdd) = block_rdd(ctx, dataset, cfg);
        let dcols = dataset.cols();
        let mean_rows = dataset.rows() / blocks.len().max(1);
        let minibatch_hint = ((mean_rows as f64 * cfg.batch_fraction).ceil() as u64).max(1);

        let mut w = vec![0.0; dcols];
        // No per-sample history in plain ASGD: the sample universe is
        // empty, so superseded model versions prune as soon as no task
        // needs them.
        let bcast = ctx.async_broadcast(w.clone(), 0);

        let mut trace = ConvergenceTrace::new();
        let f0 = self.objective.full_objective(cfg.eval_threads, dataset, &w);
        trace.push(ctx.now(), f0 - cfg.baseline);

        // In-flight pin bookkeeping, mirroring ASAGA: entries cleared on
        // consumption; leftovers (tasks lost to worker failure) released at
        // run end.
        let mut pinned: Vec<Option<u64>> = vec![None; ctx.workers()];
        let record_wave = |pinned: &mut Vec<Option<u64>>, version: u64, ws: &[usize]| {
            for &wid in ws {
                debug_assert!(pinned[wid].is_none(), "worker {wid} double-submitted");
                pinned[wid] = Some(version);
            }
        };
        // Count updates relative to the context's starting version so a
        // reused (but drained) context still runs a full budget.
        let start_version = ctx.version();

        let v0 = ctx.version();
        let ws = self.submit_wave(ctx, &rdd, &bcast, cfg, minibatch_hint);
        record_wave(&mut pinned, v0, &ws);

        let mut updates = 0u64;
        let mut tasks_completed = 0u64;
        let mut max_staleness = 0u64;
        let mut wall_clock = ctx.now();
        while updates < cfg.max_updates {
            let Some(t) = ctx.collect::<GradMsg>() else {
                break;
            };
            tasks_completed += 1;
            max_staleness = max_staleness.max(t.attrs.staleness);
            bcast.unpin(t.attrs.issued_version);
            pinned[t.attrs.worker] = None;
            let damp = if cfg.staleness_damping {
                1.0 / (1.0 + t.attrs.staleness as f64)
            } else {
                1.0
            };
            let lambda = self.objective.lambda();
            for i in 0..dcols {
                w[i] -= cfg.step * damp * (t.value.g[i] + lambda * w[i]);
            }
            updates = ctx.advance_version() - start_version;
            bcast.push(w.clone());
            wall_clock = ctx.now();
            if cfg.eval_every > 0 && updates.is_multiple_of(cfg.eval_every) {
                let f = self.objective.full_objective(cfg.eval_threads, dataset, &w);
                trace.push(wall_clock, f - cfg.baseline);
            }
            let v = ctx.version();
            let ws = self.submit_wave(ctx, &rdd, &bcast, cfg, minibatch_hint);
            record_wave(&mut pinned, v, &ws);
        }

        let final_objective = self.objective.full_objective(cfg.eval_threads, dataset, &w);
        trace.push(wall_clock, final_objective - cfg.baseline);

        // Drain in-flight tasks (their gradients are discarded) so the
        // context is clean for the next run; release pins of lost tasks.
        while let Some(t) = ctx.collect::<GradMsg>() {
            bcast.unpin(t.attrs.issued_version);
            pinned[t.attrs.worker] = None;
        }
        for v in pinned.into_iter().flatten() {
            bcast.unpin(v);
        }

        RunReport {
            trace,
            updates,
            tasks_completed,
            max_staleness,
            wall_clock,
            mean_wait: ctx.driver().wait_recorder().overall_mean(),
            bytes_shipped: ctx.driver().total_bytes_shipped(),
            worker_clocks: ctx.stat().workers.iter().map(|s| s.clock).collect(),
            final_w: w,
            final_objective,
        }
    }
}
