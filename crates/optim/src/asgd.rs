//! Asynchronous SGD — the paper's Listing 3 walk-through.
//!
//! Workers compute mini-batch gradients against the model version captured
//! at task submission; the server applies each collected gradient as soon
//! as it arrives (plus the ridge term), bumps the model version, pushes
//! the new model through the history broadcast (only the 8-byte version ID
//! travels with later tasks; workers fetch-and-cache values on miss), and
//! refills whichever workers the barrier filter admits.
//!
//! Gradients travel as [`GradDelta`]s: over CSR partitions the task runs
//! the sparse gather kernel and ships only the batch support, which the
//! server scatters onto the model without densifying — the sparse fast
//! path. Dense partitions use the dense kernel, bit-identical to the
//! original implementation. The task shape and wave/pin machinery are
//! shared with [`crate::AsyncMsgd`] in [`crate::solver`].

use async_cluster::ConvergenceTrace;
use async_core::AsyncContext;
use async_data::Dataset;
use async_linalg::GradDelta;
use sparklet::Payload;

use crate::objective::Objective;
use crate::solver::{
    block_rdd, drain_grad_tasks, record_wave, submit_grad_wave, AsyncSolver, GradMsg, RunReport,
    SolverCfg,
};

/// Asynchronous stochastic gradient descent.
#[derive(Debug, Clone, Copy)]
pub struct Asgd {
    /// The objective being minimized.
    pub objective: Objective,
}

impl Asgd {
    /// An ASGD solver for `objective`.
    pub fn new(objective: Objective) -> Self {
        Self { objective }
    }
}

impl AsyncSolver for Asgd {
    fn name(&self) -> &'static str {
        "asgd"
    }

    fn run(&mut self, ctx: &mut AsyncContext, dataset: &Dataset, cfg: &SolverCfg) -> RunReport {
        assert_eq!(ctx.pending(), 0, "asgd: context has in-flight tasks");
        let (blocks, rdd) = block_rdd(ctx, dataset, cfg);
        let dcols = dataset.cols();
        let mean_rows = dataset.rows() / blocks.len().max(1);
        let minibatch_hint = ((mean_rows as f64 * cfg.batch_fraction).ceil() as u64).max(1);

        let mut w = vec![0.0; dcols];
        // No per-sample history in plain ASGD: the sample universe is
        // empty, so superseded model versions prune as soon as no task
        // needs them.
        let bcast = ctx.async_broadcast(w.clone(), 0);

        let mut trace = ConvergenceTrace::new();
        let f0 = self.objective.full_objective(cfg.eval_threads, dataset, &w);
        trace.push(ctx.now(), f0 - cfg.baseline);

        // In-flight pin bookkeeping: entries cleared on consumption;
        // leftovers (tasks lost to worker failure) released at run end.
        let mut pinned: Vec<Option<u64>> = vec![None; ctx.workers()];
        // Count updates relative to the context's starting version so a
        // reused (but drained) context still runs a full budget.
        let start_version = ctx.version();

        let v0 = ctx.version();
        let ws = submit_grad_wave(ctx, &rdd, &bcast, cfg, minibatch_hint, self.objective);
        record_wave(&mut pinned, v0, &ws);

        let mut updates = 0u64;
        let mut tasks_completed = 0u64;
        let mut max_staleness = 0u64;
        let mut grad_entries = 0u64;
        let mut result_bytes = 0u64;
        let mut wall_clock = ctx.now();
        while updates < cfg.max_updates {
            let Some(t) = ctx.collect::<GradMsg>() else {
                break;
            };
            tasks_completed += 1;
            max_staleness = max_staleness.max(t.attrs.staleness);
            grad_entries += t.value.entries;
            result_bytes += t.value.g.encoded_len();
            bcast.unpin(t.attrs.issued_version);
            pinned[t.attrs.worker] = None;
            let damp = if cfg.staleness_damping {
                1.0 / (1.0 + t.attrs.staleness as f64)
            } else {
                1.0
            };
            let lambda = self.objective.lambda();
            match &t.value.g {
                GradDelta::Dense(g) => {
                    for i in 0..dcols {
                        w[i] -= cfg.step * damp * (g[i] + lambda * w[i]);
                    }
                }
                GradDelta::Sparse(_) => {
                    // Ridge shrinkage over every coordinate, then scatter
                    // the data gradient onto its support only.
                    let shrink = cfg.step * damp * lambda;
                    for wi in w.iter_mut() {
                        *wi -= shrink * *wi;
                    }
                    t.value.g.axpy_into(-(cfg.step * damp), &mut w);
                }
            }
            updates = ctx.advance_version() - start_version;
            bcast.push(w.clone());
            wall_clock = ctx.now();
            if cfg.eval_every > 0 && updates.is_multiple_of(cfg.eval_every) {
                let f = self.objective.full_objective(cfg.eval_threads, dataset, &w);
                trace.push(wall_clock, f - cfg.baseline);
            }
            let v = ctx.version();
            let ws = submit_grad_wave(ctx, &rdd, &bcast, cfg, minibatch_hint, self.objective);
            record_wave(&mut pinned, v, &ws);
        }

        let final_objective = self.objective.full_objective(cfg.eval_threads, dataset, &w);
        trace.push(wall_clock, final_objective - cfg.baseline);

        drain_grad_tasks(ctx, &bcast, pinned);

        RunReport {
            trace,
            updates,
            tasks_completed,
            max_staleness,
            wall_clock,
            mean_wait: ctx.driver().wait_recorder().overall_mean(),
            bytes_shipped: ctx.driver().total_bytes_shipped(),
            grad_entries,
            result_bytes,
            worker_clocks: ctx.stat().workers.iter().map(|s| s.clock).collect(),
            final_w: w,
            final_objective,
        }
    }
}
