//! The solver ↔ server seam of the serving read path.
//!
//! A [`ServeFeed`] is the rendezvous a running solver publishes its live
//! model broadcast through: serving threads (the `async-serve` crate)
//! block on [`ServeFeed::wait_model`] until the solver has created its
//! [`async_core::AsyncBcast`], then read pinned snapshots from it
//! concurrently with training — no copy of the model ever crosses the
//! seam, only a clone of the broadcast handle (readers and the trainer
//! share the same MVCC version table). The feed also carries the shared
//! [`ServeStats`] counters so the solver can fold a [`ServeCounters`]
//! snapshot into its [`crate::RunReport`] at run end, and a query log the
//! online-learning hook appends served rows to.
//!
//! With [`crate::SolverCfg::serve_feed`] unset (the default) none of this
//! executes and every solver is bit-identical to builds predating the
//! serving layer.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use async_core::AsyncBcast;

use crate::objective::Objective;

/// What a solver exposes to readers: the live model broadcast plus the
/// metadata a predictor needs to score against it.
#[derive(Clone)]
pub struct PublishedModel {
    /// The solver's model broadcast — the same ring the training loop
    /// pushes snapshots into. Readers pin versions from it directly.
    pub bcast: AsyncBcast<Vec<f64>>,
    /// The objective being optimized (drives margin → prediction mapping).
    pub objective: Objective,
    /// Model dimension (features per row).
    pub dim: usize,
}

impl std::fmt::Debug for PublishedModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PublishedModel")
            .field("objective", &self.objective)
            .field("dim", &self.dim)
            .finish_non_exhaustive()
    }
}

/// Shared atomic serving counters, updated by predictors and snapshotted
/// into [`ServeCounters`] by the solver at run end.
#[derive(Debug, Default)]
pub struct ServeStats {
    reads: AtomicU64,
    rows: AtomicU64,
    refreshes: AtomicU64,
    max_lag: AtomicU64,
}

impl ServeStats {
    /// Records one predict call scoring `rows` rows at `lag` versions
    /// behind the live watermark.
    pub fn record_read(&self, rows: u64, lag: u64) {
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.rows.fetch_add(rows, Ordering::Relaxed);
        self.max_lag.fetch_max(lag, Ordering::Relaxed);
    }

    /// Records one freshness-policy re-pin (the reader's snapshot fell
    /// behind `max_version_lag` and was swapped for the latest).
    pub fn record_refresh(&self) {
        self.refreshes.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshots the counters.
    pub fn counters(&self) -> ServeCounters {
        ServeCounters {
            reads: self.reads.load(Ordering::Relaxed),
            rows_scored: self.rows.load(Ordering::Relaxed),
            refreshes: self.refreshes.load(Ordering::Relaxed),
            max_version_lag: self.max_lag.load(Ordering::Relaxed),
        }
    }
}

/// Plain snapshot of the serving counters, reported in
/// [`crate::RunReport::serve`]. All zeros when no serving was attached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeCounters {
    /// Predict calls served.
    pub reads: u64,
    /// Total rows scored across those calls.
    pub rows_scored: u64,
    /// Freshness-policy re-pins (snapshot swaps to the latest version).
    pub refreshes: u64,
    /// Largest version lag any served read observed at score time.
    pub max_version_lag: u64,
}

/// One served query row fed back for online learning: the feature support
/// and the label the caller observed after serving.
#[derive(Debug, Clone)]
pub struct LoggedQuery {
    /// Sparse feature pairs `(coordinate, value)`, strictly increasing.
    pub features: Vec<(u32, f64)>,
    /// Observed outcome (same label convention as the training set).
    pub label: f64,
}

struct FeedInner {
    model: Mutex<Option<PublishedModel>>,
    ready: Condvar,
    done: AtomicBool,
    stats: ServeStats,
    queries: Mutex<Vec<LoggedQuery>>,
}

/// The rendezvous between one solver run and its serving layer. Cheap to
/// clone; clones address the same state. Hand one copy to
/// [`crate::SolverCfg::serve_feed`] and another to the server.
#[derive(Clone, Default)]
pub struct ServeFeed {
    inner: Arc<FeedInner>,
}

impl Default for FeedInner {
    fn default() -> Self {
        Self {
            model: Mutex::new(None),
            ready: Condvar::new(),
            done: AtomicBool::new(false),
            stats: ServeStats::default(),
            queries: Mutex::new(Vec::new()),
        }
    }
}

impl std::fmt::Debug for ServeFeed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeFeed")
            .field(
                "published",
                &self.inner.model.lock().expect("feed").is_some(),
            )
            .field("done", &self.inner.done.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl ServeFeed {
    /// A fresh, unpublished feed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Solver side: exposes the live model broadcast to readers. Called
    /// once, right after the run creates its broadcast; wakes every thread
    /// blocked in [`ServeFeed::wait_model`].
    pub fn publish(&self, model: PublishedModel) {
        // Re-arm the done flag while holding the model lock: a feed reused
        // across runs (a durable resume republishing after its first run's
        // `mark_done`) must let new readers rendezvous again instead of
        // observing a published model on a "finished" feed. Clearing under
        // the lock keeps the pair atomic for `wait_model`'s loop, which
        // reads `done` only while holding the same lock.
        let mut m = self.inner.model.lock().expect("serve feed poisoned");
        self.inner.done.store(false, Ordering::SeqCst);
        *m = Some(model);
        self.inner.ready.notify_all();
    }

    /// Blocks until a model is published, then returns a clone of it.
    /// Returns `None` if the run finishes (or was already finished)
    /// without ever publishing.
    pub fn wait_model(&self) -> Option<PublishedModel> {
        let mut m = self.inner.model.lock().expect("serve feed poisoned");
        loop {
            if let Some(model) = m.as_ref() {
                return Some(model.clone());
            }
            if self.inner.done.load(Ordering::SeqCst) {
                return None;
            }
            m = self.inner.ready.wait(m).expect("serve feed poisoned");
        }
    }

    /// Non-blocking model lookup.
    pub fn try_model(&self) -> Option<PublishedModel> {
        self.inner
            .model
            .lock()
            .expect("serve feed poisoned")
            .clone()
    }

    /// Solver side: marks the run finished. Readers keep working — the
    /// broadcast stays valid, frozen at its final version — but servers
    /// can use this to stop refresh loops and report final counters.
    pub fn mark_done(&self) {
        self.inner.done.store(true, Ordering::SeqCst);
        // Wake waiters so a run that never published cannot strand them.
        let _guard = self.inner.model.lock().expect("serve feed poisoned");
        self.inner.ready.notify_all();
    }

    /// True once the attached run finished.
    pub fn is_done(&self) -> bool {
        self.inner.done.load(Ordering::SeqCst)
    }

    /// The shared serving counters.
    pub fn stats(&self) -> &ServeStats {
        &self.inner.stats
    }

    /// Snapshot of the serving counters (what lands in
    /// [`crate::RunReport::serve`]).
    pub fn counters(&self) -> ServeCounters {
        self.inner.stats.counters()
    }

    /// Online-learning hook: appends one served query with its observed
    /// label to the feed's query log.
    pub fn log_query(&self, q: LoggedQuery) {
        self.inner
            .queries
            .lock()
            .expect("serve feed poisoned")
            .push(q);
    }

    /// Drains every logged query accumulated so far (oldest first),
    /// leaving the log empty — the raw material for an online-learning
    /// retrain pass.
    pub fn drain_queries(&self) -> Vec<LoggedQuery> {
        std::mem::take(&mut *self.inner.queries.lock().expect("serve feed poisoned"))
    }

    /// Number of logged-but-undrained queries.
    pub fn pending_queries(&self) -> usize {
        self.inner
            .queries
            .lock()
            .expect("serve feed poisoned")
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(dim: usize) -> PublishedModel {
        PublishedModel {
            bcast: AsyncBcast::new(0, vec![0.0; dim], 1),
            objective: Objective::LeastSquares { lambda: 0.0 },
            dim,
        }
    }

    #[test]
    fn publish_wakes_blocked_readers() {
        let feed = ServeFeed::new();
        let reader = feed.clone();
        let t = std::thread::spawn(move || reader.wait_model().map(|m| m.dim));
        std::thread::sleep(std::time::Duration::from_millis(10));
        feed.publish(model(3));
        assert_eq!(t.join().unwrap(), Some(3));
        assert!(feed.try_model().is_some());
    }

    #[test]
    fn done_without_publish_releases_waiters() {
        let feed = ServeFeed::new();
        let reader = feed.clone();
        let t = std::thread::spawn(move || reader.wait_model().is_none());
        std::thread::sleep(std::time::Duration::from_millis(10));
        feed.mark_done();
        assert!(t.join().unwrap());
        assert!(feed.is_done());
    }

    #[test]
    fn republish_after_done_rearms_the_rendezvous() {
        let feed = ServeFeed::new();
        feed.publish(model(2));
        feed.mark_done();
        assert!(feed.is_done());
        // A resumed run republishing through the same feed re-arms the
        // done flag, so fresh readers rendezvous instead of observing a
        // finished feed.
        feed.publish(model(5));
        assert!(!feed.is_done());
        assert_eq!(feed.wait_model().map(|m| m.dim), Some(5));
        feed.mark_done();
        assert!(feed.is_done());
    }

    #[test]
    fn stats_accumulate_and_snapshot() {
        let feed = ServeFeed::new();
        feed.stats().record_read(4, 2);
        feed.stats().record_read(1, 7);
        feed.stats().record_refresh();
        assert_eq!(
            feed.counters(),
            ServeCounters {
                reads: 2,
                rows_scored: 5,
                refreshes: 1,
                max_version_lag: 7,
            }
        );
    }

    #[test]
    fn query_log_drains_in_order() {
        let feed = ServeFeed::new();
        for i in 0..3 {
            feed.log_query(LoggedQuery {
                features: vec![(i, 1.0)],
                label: i as f64,
            });
        }
        assert_eq!(feed.pending_queries(), 3);
        let drained = feed.drain_queries();
        assert_eq!(drained.len(), 3);
        assert_eq!(drained[2].features, vec![(2, 1.0)]);
        assert_eq!(feed.pending_queries(), 0);
    }
}
