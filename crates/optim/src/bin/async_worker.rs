//! The conventional remote worker executable: serves this crate's solver
//! routines (mini-batch gradient, ASAGA telescoping difference) over the
//! sparklet wire protocol. The remote engine spawns one of these per
//! worker with `--connect <addr> --worker <id> --epoch <e>`.

fn main() -> std::io::Result<()> {
    sparklet::remote::worker_main(async_optim::worker_registry())
}
