//! Server-state checkpoints: serialize the model, the iterate count, and
//! the solver's auxiliary history, and resume a crashed driver from them.
//!
//! A [`Checkpoint`] captures everything the *server* owns at an update
//! boundary — the model `w`, the total number of applied updates, and the
//! solver-specific history ([`SolverHistory`]): nothing for plain ASGD,
//! the heavy-ball velocity for momentum SGD, the running table-mean
//! gradient ᾱ for ASAGA. Worker-side state (caches, in-flight tasks) is
//! deliberately excluded: tasks in flight at the crash are simply lost, as
//! they would be on a real driver failure, and workers re-sync from the
//! history broadcast on their first post-restore task.
//!
//! The wire format is hand-rolled little-endian (the build environment is
//! offline — no serde) and round-trips `f64`s **bit-identically**
//! ([`Checkpoint::to_bytes`] / [`Checkpoint::from_bytes`]), so a restored
//! server model is exactly the checkpointed one.
//!
//! Resume semantics per solver (`resume_from` on each):
//!
//! * **ASGD** — `w` is restored; there is no auxiliary state.
//! * **AsyncMsgd** — `w` and the velocity `u` are restored.
//! * **ASAGA** — `w` is restored and the SAGA table is *re-based*: every
//!   sample's historical model `φⱼ` becomes the restored `w` (the history
//!   broadcast restarts at version 0 = `w`), and ᾱ is recomputed as the
//!   full gradient at `w`, which is exactly consistent with that table.
//!   The checkpointed running ᾱ is still serialized — it documents the
//!   pre-crash history and round-trips bit-identically — but it describes
//!   the *old* per-sample table, which died with the driver, so reusing it
//!   against the re-based table would bias the estimator.

/// Magic prefix of the checkpoint wire format.
const MAGIC: &[u8; 8] = b"ASYNCKPT";
/// Format version written by [`Checkpoint::to_bytes`]. Format 1 (no model
/// version, no compressor residuals) is still parsed: see
/// [`Checkpoint::from_bytes`].
const FORMAT: u32 = 2;

/// Solver-specific auxiliary state captured alongside the model.
#[derive(Debug, Clone, PartialEq)]
pub enum SolverHistory {
    /// Plain ASGD: the model is the whole server state.
    None,
    /// Momentum SGD: the heavy-ball velocity `u`.
    Momentum(Vec<f64>),
    /// ASAGA: the running table-mean gradient ᾱ at checkpoint time.
    Saga {
        /// `(1/n) Σⱼ f'ⱼ(φⱼ)·xⱼ` over the pre-crash per-sample table.
        alpha_bar: Vec<f64>,
    },
}

impl SolverHistory {
    fn tag(&self) -> u8 {
        match self {
            SolverHistory::None => 0,
            SolverHistory::Momentum(_) => 1,
            SolverHistory::Saga { .. } => 2,
        }
    }
}

/// A serialized-or-serializable snapshot of the server's solver state.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Solver that produced it (`"asgd"`, `"asaga"`, `"async-msgd"`).
    pub solver: String,
    /// Total server model updates applied when the checkpoint was taken
    /// (across resumes: a resumed run keeps counting from here).
    pub updates: u64,
    /// Server model version at capture. Equals `updates` when every wave
    /// applies one update, but diverges under `absorb_batch > 1` (many
    /// updates per version); per-task RNG streams key on the version, so
    /// a resumed run re-seats its counter here, not at `updates`.
    pub version: u64,
    /// The server model.
    pub w: Vec<f64>,
    /// Solver-specific history.
    pub history: SolverHistory,
    /// Per-partition error-feedback residuals of the run's
    /// [`crate::CompressorBank`], sorted by partition. `Some(vec![])` for a
    /// run with compression off; `None` only for checkpoints parsed from
    /// the residual-less legacy format (see [`Checkpoint::has_residuals`]).
    pub residuals: Option<Vec<(u64, Vec<f64>)>>,
}

/// Why a checkpoint failed to parse or apply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The byte stream is not a checkpoint (bad magic or truncation).
    Malformed(&'static str),
    /// The format version is newer than this build understands.
    UnsupportedFormat(u32),
    /// The checkpoint was produced by a different solver.
    SolverMismatch {
        /// Solver the checkpoint names.
        found: String,
        /// Solver attempting the resume.
        expected: &'static str,
    },
    /// The model dimension does not match the dataset.
    DimensionMismatch {
        /// Checkpointed model length.
        found: usize,
        /// Dataset feature dimension.
        expected: usize,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Malformed(what) => write!(f, "malformed checkpoint: {what}"),
            CheckpointError::UnsupportedFormat(v) => {
                write!(f, "unsupported checkpoint format version {v}")
            }
            CheckpointError::SolverMismatch { found, expected } => {
                write!(f, "checkpoint from solver {found:?}, expected {expected:?}")
            }
            CheckpointError::DimensionMismatch { found, expected } => {
                write!(
                    f,
                    "checkpoint dimension {found} != dataset dimension {expected}"
                )
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

fn put_f64s(out: &mut Vec<u8>, v: &[f64]) {
    out.extend_from_slice(&(v.len() as u64).to_le_bytes());
    for x in v {
        out.extend_from_slice(&x.to_bits().to_le_bytes());
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.pos + n > self.buf.len() {
            return Err(CheckpointError::Malformed("truncated"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64s(&mut self) -> Result<Vec<f64>, CheckpointError> {
        let n = self.u64()? as usize;
        // Guard length against truncated buffers before allocating.
        let needed = n
            .checked_mul(8)
            .and_then(|b| b.checked_add(self.pos))
            .ok_or(CheckpointError::Malformed("vector length overflows"))?;
        if needed > self.buf.len() {
            return Err(CheckpointError::Malformed("vector length overruns buffer"));
        }
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(f64::from_bits(u64::from_le_bytes(
                self.take(8)?.try_into().unwrap(),
            )));
        }
        Ok(v)
    }
}

impl Checkpoint {
    /// Serializes to the stable little-endian wire format. The `f64`
    /// payloads are written as raw bits, so
    /// `from_bytes(to_bytes(c)) == c` *bit-for-bit*.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + 8 * self.w.len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&FORMAT.to_le_bytes());
        out.extend_from_slice(&(self.solver.len() as u32).to_le_bytes());
        out.extend_from_slice(self.solver.as_bytes());
        out.extend_from_slice(&self.updates.to_le_bytes());
        out.extend_from_slice(&self.version.to_le_bytes());
        put_f64s(&mut out, &self.w);
        out.push(self.history.tag());
        match &self.history {
            SolverHistory::None => {}
            SolverHistory::Momentum(u) => put_f64s(&mut out, u),
            SolverHistory::Saga { alpha_bar } => put_f64s(&mut out, alpha_bar),
        }
        match &self.residuals {
            None => out.push(0),
            Some(parts) => {
                out.push(1);
                out.extend_from_slice(&(parts.len() as u64).to_le_bytes());
                for (part, residual) in parts {
                    out.extend_from_slice(&part.to_le_bytes());
                    put_f64s(&mut out, residual);
                }
            }
        }
        out
    }

    /// Parses the wire format produced by [`Checkpoint::to_bytes`].
    /// Accepts the current format and the residual-less legacy format 1,
    /// for which the model version defaults to the update count and
    /// `residuals` parses as `None` (see [`Checkpoint::has_residuals`]).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        let mut r = Reader { buf: bytes, pos: 0 };
        if r.take(8)? != MAGIC {
            return Err(CheckpointError::Malformed("bad magic"));
        }
        let format = r.u32()?;
        if format != 1 && format != FORMAT {
            return Err(CheckpointError::UnsupportedFormat(format));
        }
        let name_len = r.u32()? as usize;
        let solver = std::str::from_utf8(r.take(name_len)?)
            .map_err(|_| CheckpointError::Malformed("solver name not utf-8"))?
            .to_string();
        let updates = r.u64()?;
        let version = if format >= 2 { r.u64()? } else { updates };
        let w = r.f64s()?;
        let tag = r.take(1)?[0];
        let history = match tag {
            0 => SolverHistory::None,
            1 => SolverHistory::Momentum(r.f64s()?),
            2 => SolverHistory::Saga {
                alpha_bar: r.f64s()?,
            },
            _ => return Err(CheckpointError::Malformed("unknown history tag")),
        };
        let residuals = if format >= 2 {
            match r.take(1)?[0] {
                0 => None,
                1 => {
                    let count = r.u64()? as usize;
                    // Each entry is at least 16 bytes (part id + length);
                    // bound the count before allocating.
                    match count.checked_mul(16).and_then(|b| b.checked_add(r.pos)) {
                        Some(needed) if needed <= bytes.len() => {}
                        _ => {
                            return Err(CheckpointError::Malformed(
                                "residual count overruns buffer",
                            ))
                        }
                    }
                    let mut parts = Vec::with_capacity(count);
                    let mut prev: Option<u64> = None;
                    for _ in 0..count {
                        let part = r.u64()?;
                        if prev.is_some_and(|p| p >= part) {
                            return Err(CheckpointError::Malformed(
                                "residual partitions not strictly increasing",
                            ));
                        }
                        prev = Some(part);
                        parts.push((part, r.f64s()?));
                    }
                    Some(parts)
                }
                _ => return Err(CheckpointError::Malformed("unknown residual flag")),
            }
        } else {
            None
        };
        if r.pos != bytes.len() {
            return Err(CheckpointError::Malformed("trailing bytes"));
        }
        Ok(Self {
            solver,
            updates,
            version,
            w,
            history,
            residuals,
        })
    }

    /// Whether the error-feedback residual section was recorded at all —
    /// `false` only for checkpoints parsed from the legacy format, which
    /// predates residual capture. [`crate::SolverCfg::lint`] warns when a
    /// compressed run resumes from such a checkpoint: the restored bank
    /// starts with zero residuals, silently dropping the accumulated error
    /// feedback.
    pub fn has_residuals(&self) -> bool {
        self.residuals.is_some()
    }

    /// Validates that this checkpoint can seed `expected` over a dataset of
    /// `dim` features.
    pub fn validate_for(&self, expected: &'static str, dim: usize) -> Result<(), CheckpointError> {
        if self.solver != expected {
            return Err(CheckpointError::SolverMismatch {
                found: self.solver.clone(),
                expected,
            });
        }
        if self.w.len() != dim {
            return Err(CheckpointError::DimensionMismatch {
                found: self.w.len(),
                expected: dim,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            solver: "async-msgd".to_string(),
            updates: 123,
            version: 123,
            // Awkward values: negative zero, subnormal, extremes.
            w: vec![-0.0, f64::MIN_POSITIVE / 2.0, 1.0e300, -3.5],
            history: SolverHistory::Momentum(vec![0.25, -1.75, 0.0, 9.0]),
            residuals: Some(vec![]),
        }
    }

    #[test]
    fn round_trip_is_bit_identical() {
        for ckpt in [
            sample(),
            Checkpoint {
                solver: "asgd".into(),
                updates: 0,
                version: 0,
                w: vec![],
                history: SolverHistory::None,
                residuals: None,
            },
            Checkpoint {
                solver: "asaga".into(),
                updates: u64::MAX,
                version: u64::MAX / 2,
                w: vec![1.0; 7],
                history: SolverHistory::Saga {
                    alpha_bar: vec![-2.0; 7],
                },
                residuals: Some(vec![
                    (0, vec![-0.0, 1.5e-308, 4.0]),
                    (3, vec![]),
                    (9, vec![7.25]),
                ]),
            },
        ] {
            let bytes = ckpt.to_bytes();
            let back = Checkpoint::from_bytes(&bytes).expect("round trip");
            assert_eq!(back, ckpt);
            // Bit-identity, not just float equality (−0.0 == 0.0 would
            // pass PartialEq; bits must too).
            for (a, b) in ckpt.w.iter().zip(back.w.iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            assert_eq!(back.to_bytes(), bytes, "re-serialization is stable");
        }
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        assert_eq!(
            Checkpoint::from_bytes(b"not a checkpoint"),
            Err(CheckpointError::Malformed("bad magic"))
        );
        let mut bytes = sample().to_bytes();
        bytes.truncate(bytes.len() - 3);
        assert!(matches!(
            Checkpoint::from_bytes(&bytes),
            Err(CheckpointError::Malformed(_))
        ));
        let mut trailing = sample().to_bytes();
        trailing.push(0);
        assert_eq!(
            Checkpoint::from_bytes(&trailing),
            Err(CheckpointError::Malformed("trailing bytes"))
        );
        let mut future = sample().to_bytes();
        future[8] = 99; // format version
        assert_eq!(
            Checkpoint::from_bytes(&future),
            Err(CheckpointError::UnsupportedFormat(99))
        );
    }

    /// Hand-built legacy (format 1) bytes: no version field, no residual
    /// section — exactly what a pre-durability build serialized.
    fn legacy_bytes() -> Vec<u8> {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&4u32.to_le_bytes());
        bytes.extend_from_slice(b"asgd");
        bytes.extend_from_slice(&55u64.to_le_bytes()); // updates
        bytes.extend_from_slice(&2u64.to_le_bytes()); // w length
        bytes.extend_from_slice(&1.5f64.to_bits().to_le_bytes());
        bytes.extend_from_slice(&(-2.0f64).to_bits().to_le_bytes());
        bytes.push(0); // history tag: None
        bytes
    }

    #[test]
    fn legacy_format_parses_without_version_or_residuals() {
        let ckpt = Checkpoint::from_bytes(&legacy_bytes()).expect("legacy parse");
        assert_eq!(ckpt.solver, "asgd");
        assert_eq!(ckpt.updates, 55);
        assert_eq!(ckpt.version, 55, "legacy version defaults to updates");
        assert_eq!(ckpt.w, vec![1.5, -2.0]);
        assert_eq!(ckpt.history, SolverHistory::None);
        assert!(!ckpt.has_residuals(), "legacy checkpoints lack residuals");
        // Re-serializing upgrades to the current format and round-trips.
        let upgraded = Checkpoint::from_bytes(&ckpt.to_bytes()).expect("upgrade");
        assert_eq!(upgraded, ckpt);
    }

    #[test]
    fn hostile_residual_sections_are_rejected() {
        // `sample()` serializes an empty residual list: flag 1, count 0.
        // Strip the count and flip the flag to an unknown value.
        let mut bad_flag = sample().to_bytes();
        bad_flag.truncate(bad_flag.len() - 8);
        assert_eq!(bad_flag.pop(), Some(1), "sample records residuals");
        bad_flag.push(7);
        // Restore a count so only the flag is wrong.
        bad_flag.extend_from_slice(&0u64.to_le_bytes());
        assert_eq!(
            Checkpoint::from_bytes(&bad_flag),
            Err(CheckpointError::Malformed("unknown residual flag"))
        );
        // An absurd residual count must be rejected before allocating.
        let mut huge = sample().to_bytes();
        huge.truncate(huge.len() - 8);
        huge.extend_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(
            Checkpoint::from_bytes(&huge),
            Err(CheckpointError::Malformed("residual count overruns buffer"))
        );
        // Out-of-order partitions are rejected.
        let mut ordered = sample();
        ordered.residuals = Some(vec![(2, vec![1.0]), (5, vec![2.0])]);
        assert!(Checkpoint::from_bytes(&ordered.to_bytes()).is_ok());
        let mut swapped = sample();
        swapped.residuals = Some(vec![(5, vec![2.0]), (2, vec![1.0])]);
        assert_eq!(
            Checkpoint::from_bytes(&swapped.to_bytes()),
            Err(CheckpointError::Malformed(
                "residual partitions not strictly increasing"
            ))
        );
    }

    #[test]
    fn huge_declared_length_does_not_allocate() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&FORMAT.to_le_bytes());
        bytes.extend_from_slice(&4u32.to_le_bytes());
        bytes.extend_from_slice(b"asgd");
        bytes.extend_from_slice(&1u64.to_le_bytes());
        bytes.extend_from_slice(&u64::MAX.to_le_bytes()); // absurd w length
        assert!(matches!(
            Checkpoint::from_bytes(&bytes),
            Err(CheckpointError::Malformed(_))
        ));
    }

    #[test]
    fn validate_for_checks_solver_and_dims() {
        let c = sample();
        assert!(c.validate_for("async-msgd", 4).is_ok());
        assert!(matches!(
            c.validate_for("asgd", 4),
            Err(CheckpointError::SolverMismatch { .. })
        ));
        assert!(matches!(
            c.validate_for("async-msgd", 5),
            Err(CheckpointError::DimensionMismatch { .. })
        ));
        // Errors render.
        let e = c.validate_for("asgd", 4).unwrap_err();
        assert!(e.to_string().contains("asgd"));
    }
}
