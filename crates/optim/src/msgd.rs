//! Staleness-adaptive momentum SGD — the paper's second ASGD-family
//! solver, the one that reads the `STAT` table to adapt under delay.
//!
//! Plain momentum is notoriously fragile under asynchrony: a gradient that
//! arrives `s` updates late keeps compounding through the velocity for
//! `1/(1−β)` further steps, so stale heavy-ball runs diverge exactly where
//! asynchrony helps most (stragglers). The standard remedy — highlighted
//! by the delay-adaptive rules in Assran et al.'s asynchrony survey and
//! implemented here — is to *damp momentum by observed staleness*: on each
//! consumed result the server queries [`AsyncContext::stat`] (the paper's
//! Table-1 `AC.STAT`), takes the observed staleness `s` (the result's own
//! tag, or the worst in-flight staleness in the table if larger), and
//! applies
//!
//! ```text
//! βₜ = β₀ / (1 + s)                 — momentum damping (always on)
//! γₜ = γ  / (1 + s)                 — step damping (cfg.staleness_damping)
//! uₜ = βₜ·uₜ₋₁ + ∇f(w) + λw
//! wₜ = wₜ₋₁ − γₜ·uₜ
//! ```
//!
//! Under BSP (s ≡ 0) this is exactly classical heavy-ball SGD; under ASP
//! against a straggler the velocity forgets stale directions at the rate
//! staleness is observed. Gradient tasks are the same [`crate::solver`]
//! wave as [`crate::Asgd`]'s, so the solver rides the sparse fast path on
//! CSR partitions (the velocity itself is dense — momentum mixes every
//! coordinate).

use async_cluster::ConvergenceTrace;
use async_core::{AsyncContext, Tagged};
use async_data::Dataset;

use crate::absorber::ShardedAbsorber;
use crate::checkpoint::{Checkpoint, SolverHistory};
use crate::compression::CompressorBank;
use crate::durable::{DurableSession, DurableStats};
use crate::objective::Objective;
use crate::scratch::ScratchPool;
use crate::serving::{PublishedModel, ServeCounters};
use crate::solver::{
    begin_supervised, block_rdd, collect_wave, crossed_multiple, drain_grad_tasks,
    stalled_should_wait, submit_grad_wave, wave_admitted, AsyncSolver, GradMsg, PinLedger,
    RunReport, SolverCfg,
};

/// Asynchronous momentum SGD with staleness-adaptive damping.
#[derive(Debug, Clone)]
pub struct AsyncMsgd {
    /// The objective being minimized.
    pub objective: Objective,
    /// Base momentum β₀, applied in full when a result arrives with zero
    /// observed staleness and damped as `β₀/(1+s)` otherwise.
    pub momentum: f64,
    resume: Option<Checkpoint>,
    bank: Option<CompressorBank>,
}

impl AsyncMsgd {
    /// A staleness-adaptive momentum solver with the conventional β₀ = 0.9.
    pub fn new(objective: Objective) -> Self {
        Self {
            objective,
            momentum: 0.9,
            resume: None,
            bank: None,
        }
    }

    /// Injects the [`CompressorBank`] the next run's tasks compress
    /// through (only consulted when [`crate::SolverCfg::compress`] is on);
    /// by default each run builds its own.
    pub fn with_compressor_bank(mut self, bank: CompressorBank) -> Self {
        self.bank = Some(bank);
        self
    }

    /// Overrides the base momentum β₀.
    pub fn with_momentum(mut self, momentum: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&momentum),
            "momentum must be in [0, 1): {momentum}"
        );
        self.momentum = momentum;
        self
    }

    /// Seeds the next [`AsyncSolver::run`] from a checkpoint: the server
    /// model *and* the heavy-ball velocity restore bit-identically.
    ///
    /// Validated against the dataset at `run` time, which panics on a
    /// solver/dimension/history mismatch.
    pub fn resume_from(mut self, ckpt: Checkpoint) -> Self {
        self.resume = Some(ckpt);
        self
    }
}

impl AsyncSolver for AsyncMsgd {
    fn name(&self) -> &'static str {
        "async-msgd"
    }

    fn run(&mut self, ctx: &mut AsyncContext, dataset: &Dataset, cfg: &SolverCfg) -> RunReport {
        assert_eq!(ctx.pending(), 0, "async-msgd: context has in-flight tasks");
        let (lost0, retried0) = begin_supervised(ctx, cfg);
        let (blocks, rdd) = block_rdd(ctx, dataset, cfg);
        let dcols = dataset.cols();
        let mean_rows = dataset.rows() / blocks.len().max(1);
        let minibatch_hint = ((mean_rows as f64 * cfg.batch_fraction).ceil() as u64).max(1);

        // Buffer recycling for the gradient/result cycle; the velocity is
        // checked out of the same pool below.
        let pool = ScratchPool::new();
        let bank = self.bank.take().unwrap_or_default();
        // Durability: open the store when configured; an explicit
        // `resume_from` takes precedence over the store's newest valid
        // generation, and a durable auto-resume completes the crashed
        // run's lineage budget instead of adding a fresh one.
        let mut durable = cfg.durable_dir.as_deref().map(|dir| {
            DurableSession::open(dir).expect("async-msgd: cannot open durable checkpoint store")
        });
        let explicit = self.resume.take();
        let from_store = explicit.is_none();
        let resume = explicit.or_else(|| durable.as_mut().and_then(DurableSession::take_resume));
        // Resume from a checkpoint when one is installed: both the server
        // model and the heavy-ball velocity restore bit-identically.
        let (mut w, mut u, base_updates, resumed) = match resume {
            Some(ckpt) => {
                ckpt.validate_for("async-msgd", dcols)
                    .expect("async-msgd: incompatible resume checkpoint");
                for warning in cfg.lint_resume(&ckpt) {
                    eprintln!("async-msgd resume: {warning}");
                }
                // Per-task RNG streams key on (seed, version, part) —
                // re-seating keeps the resumed trajectory on the crashed
                // run's version numbering.
                ctx.reseat_version(ckpt.version);
                match ckpt.history {
                    SolverHistory::Momentum(u) => {
                        assert_eq!(u.len(), dcols, "async-msgd: velocity dimension mismatch");
                        (
                            ckpt.w,
                            u,
                            ckpt.updates,
                            Some((ckpt.version, ckpt.residuals)),
                        )
                    }
                    _ => panic!("async-msgd: checkpoint lacks a momentum history"),
                }
            }
            // The heavy-ball velocity; dense by nature (momentum mixes
            // every coordinate), updated in O(dim) per server update.
            None => (vec![0.0; dcols], pool.checkout_dense(dcols), 0, None),
        };
        let budget = if from_store && resumed.is_some() {
            cfg.max_updates.saturating_sub(base_updates)
        } else {
            cfg.max_updates
        };
        let bcast = match &resumed {
            Some((version, _)) => ctx.async_broadcast_at(w.clone(), 0, *version),
            None => ctx.async_broadcast(w.clone(), 0),
        };
        // A resumed run reloads the crashed run's error-feedback residuals
        // so compression continues instead of restarting cold.
        if let Some((_, Some(residuals))) = &resumed {
            bank.restore_residuals(residuals);
        }
        // A bank reused across runs keeps only this run's partitions.
        bank.retain_parts_below(blocks.len().max(1));
        if let Some(feed) = cfg.serve_feed.as_ref() {
            feed.publish(PublishedModel {
                bcast: bcast.clone(),
                objective: self.objective,
                dim: dcols,
            });
        }

        let mut trace = ConvergenceTrace::new();
        let f0 = self.objective.full_objective(cfg.eval_threads, dataset, &w);
        trace.push(ctx.now(), f0 - cfg.baseline);

        let mut pinned = PinLedger::new(ctx.workers());
        let mut checkpoints = Vec::new();

        let v0 = ctx.version();
        let ws = submit_grad_wave(
            ctx,
            &rdd,
            &bcast,
            cfg,
            minibatch_hint,
            self.objective,
            &pool,
            &bank,
        );
        pinned.record_wave(v0, &ws);

        // The sharded server: momentum's recurrence has no fold form, so
        // batched waves apply delta-sequentially *within* each shard — one
        // pool dispatch and one snapshot push per wave.
        let mut server = ShardedAbsorber::new(dcols, cfg.server_threads);
        let absorb_batch = cfg.absorb_batch.max(1);
        let mut wave: Vec<Tagged<GradMsg>> = Vec::new();
        let mut betas: Vec<f64> = Vec::new();
        let mut gammas: Vec<f64> = Vec::new();

        let mut updates = 0u64;
        let mut tasks_completed = 0u64;
        let mut max_staleness = 0u64;
        let mut grad_entries = 0u64;
        let mut result_bytes = 0u64;
        let mut wall_clock = ctx.now();
        let lambda = self.objective.lambda();
        while updates < budget {
            // Degrade-policy gate: see `SolverCfg::degrade`.
            if !wave_admitted(ctx) {
                break;
            }
            let want = absorb_batch.min((budget - updates) as usize);
            collect_wave(ctx, want, &mut wave);
            if wave.is_empty() {
                // Total stall (all in-flight tasks lost): restart with a
                // fresh wave if revived/joined workers are available, or
                // wait toward a scheduled recovery before giving up.
                let v = ctx.version();
                let ws = submit_grad_wave(
                    ctx,
                    &rdd,
                    &bcast,
                    cfg,
                    minibatch_hint,
                    self.objective,
                    &pool,
                    &bank,
                );
                if ws.is_empty() {
                    if stalled_should_wait(ctx) {
                        continue;
                    }
                    break;
                }
                pinned.record_wave(v, &ws);
                continue;
            }
            // The staleness-adaptive rule: consult the STAT table for the
            // worst delay visible right now (one snapshot per wave), fold
            // in each result's own staleness tag, and damp momentum (and
            // optionally the step) per consumed result.
            let snap = ctx.stat();
            betas.clear();
            gammas.clear();
            for t in &wave {
                tasks_completed += 1;
                max_staleness = max_staleness.max(t.attrs.staleness);
                grad_entries += t.value.entries;
                result_bytes += t.value.wire_bytes;
                bcast.unpin(t.attrs.issued_version);
                pinned.consume(t.attrs.worker, t.attrs.issued_version);
                let observed = t.attrs.staleness.max(snap.max_staleness());
                let damp = 1.0 / (1.0 + observed as f64);
                betas.push(self.momentum * damp);
                gammas.push(cfg.step * if cfg.staleness_damping { damp } else { 1.0 });
            }
            // The per-coordinate recurrence is the serial one in either
            // branch; sharding (any thread count) and the wave form are
            // both bit-identical to stepping the batch one delta at a
            // time with the same (βₖ, γₖ) sequence.
            if wave.len() == 1 {
                server.msgd_step(
                    &mut w,
                    &mut u,
                    &wave[0].value.g,
                    betas[0],
                    gammas[0],
                    lambda,
                );
            } else {
                let n = wave.len();
                let deltas = &wave;
                server.msgd_wave(
                    &mut w,
                    &mut u,
                    n,
                    |k| &deltas[k].value.g,
                    &betas,
                    &gammas,
                    lambda,
                );
            }
            let prev_updates = updates;
            updates += wave.len() as u64;
            // One model version and one snapshot push per wave; momentum
            // mixes every coordinate, so every version is a dense change
            // (the shard-parallel memcpy and buffer recycling still apply).
            ctx.advance_version();
            bcast.push_snapshot_sharded(&w, None, server.pool());
            for t in wave.drain(..) {
                pool.recycle_delta(t.value.g);
            }
            wall_clock = ctx.now();
            if cfg.eval_every > 0 && crossed_multiple(prev_updates, updates, cfg.eval_every) {
                let f = self.objective.full_objective(cfg.eval_threads, dataset, &w);
                trace.push(wall_clock, f - cfg.baseline);
            }
            if cfg.checkpoint_every > 0
                && crossed_multiple(prev_updates, updates, cfg.checkpoint_every)
            {
                let lineage = base_updates + updates;
                let version = ctx.version();
                checkpoints.push(Checkpoint {
                    solver: "async-msgd".to_string(),
                    updates: lineage,
                    version,
                    w: w.clone(),
                    history: SolverHistory::Momentum(u.clone()),
                    residuals: Some(bank.export_residuals()),
                });
                if let Some(session) = durable.as_mut() {
                    // The just-pushed snapshot rides to the background
                    // writer as a read pin; the velocity clone matches the
                    // in-memory checkpoint's cost.
                    if let Some(pin) = bcast.try_pin_read_at(version) {
                        session.submit(
                            lineage,
                            "async-msgd",
                            lineage,
                            version,
                            pin,
                            SolverHistory::Momentum(u.clone()),
                            bank.export_residuals(),
                        );
                    }
                }
            }
            let v = ctx.version();
            let ws = submit_grad_wave(
                ctx,
                &rdd,
                &bcast,
                cfg,
                minibatch_hint,
                self.objective,
                &pool,
                &bank,
            );
            pinned.record_wave(v, &ws);
        }

        let final_objective = self.objective.full_objective(cfg.eval_threads, dataset, &w);
        trace.push(wall_clock, final_objective - cfg.baseline);

        // Final durable save (deduplicated when the run ended exactly on a
        // cadence boundary), then drain the writer before reporting.
        let durable_stats = match durable {
            Some(mut session) => {
                let lineage = base_updates + updates;
                if let Some(pin) = bcast.try_pin_read_at(ctx.version()) {
                    session.submit(
                        lineage,
                        "async-msgd",
                        lineage,
                        ctx.version(),
                        pin,
                        SolverHistory::Momentum(u.clone()),
                        bank.export_residuals(),
                    );
                }
                session.finish()
            }
            None => DurableStats::default(),
        };

        drain_grad_tasks(ctx, &bcast, pinned);

        let serve = match cfg.serve_feed.as_ref() {
            Some(feed) => {
                feed.mark_done();
                feed.counters()
            }
            None => ServeCounters::default(),
        };

        RunReport {
            trace,
            updates,
            tasks_completed,
            max_staleness,
            wall_clock,
            mean_wait: ctx.driver().wait_recorder().overall_mean(),
            bytes_shipped: ctx.driver().total_bytes_shipped(),
            grad_entries,
            result_bytes,
            worker_clocks: ctx.stat().workers.iter().map(|s| s.clock).collect(),
            final_w: w,
            final_objective,
            checkpoints,
            serve,
            lost_tasks: ctx.lost_tasks() - lost0,
            retried_tasks: ctx.retried_tasks() - retried0,
            durable: durable_stats,
        }
    }
}
