//! The [`AsyncSolver`] interface and shared run machinery.
//!
//! A solver drives an [`AsyncContext`] with gradient tasks under a
//! [`BarrierFilter`] and applies collected updates server-side — the shape
//! of the paper's Listings 3–4. Everything a run produces (convergence
//! trace, staleness extremes, wait/byte accounting) lands in a
//! [`RunReport`] so benches and tests read one structure.

use async_cluster::{ConvergenceTrace, VDur, VTime};
use async_core::{
    AsyncBcast, AsyncContext, BarrierFilter, DegradePolicy, SubmitOpts, WaveDirective,
};
use async_data::{sampler, Block, Dataset};
use async_linalg::{GradDelta, ParallelismCfg};
use sparklet::{Payload, Rdd, WorkerCtx};

use crate::checkpoint::Checkpoint;
use crate::compression::{CompressCfg, CompressorBank};
use crate::durable::DurableStats;
use crate::objective::Objective;
use crate::scratch::ScratchPool;
use crate::serving::{ServeCounters, ServeFeed};

/// Configuration shared by all solvers.
#[derive(Debug, Clone)]
pub struct SolverCfg {
    /// Step size γ.
    pub step: f64,
    /// If true, scale each applied step by `1/(1 + staleness)` — the
    /// bounded-staleness damping rule the paper discusses for ASGD.
    pub staleness_damping: bool,
    /// Mini-batch fraction `b` of each partition per task (eq. 5).
    pub batch_fraction: f64,
    /// Barrier-control strategy admitting workers to new tasks.
    pub barrier: BarrierFilter,
    /// Stop after this many server model updates.
    pub max_updates: u64,
    /// Record a convergence sample every this many updates (0 = only the
    /// initial and final points).
    pub eval_every: u64,
    /// Baseline objective subtracted in the trace (the paper's
    /// `objective − baseline` error metric).
    pub baseline: f64,
    /// Number of data partitions (0 = one per worker).
    pub partitions: usize,
    /// Sampling seed; runs are pure functions of `(cfg, cluster spec)`.
    pub seed: u64,
    /// Driver-side parallelism for objective evaluations.
    pub eval_threads: ParallelismCfg,
    /// Capture a [`Checkpoint`] of the server state every this many
    /// updates (0 = never); captured checkpoints land in
    /// [`RunReport::checkpoints`], ready for `to_bytes` and a later
    /// `resume_from`.
    pub checkpoint_every: u64,
    /// Capacity of the incremental-broadcast ring (0 = disabled, the
    /// default): when > 0, the model broadcast keeps the change supports
    /// of this many recent versions and ships version-diff patches to
    /// workers instead of dense snapshots wherever a patch is smaller and
    /// bit-exact (see `async_core::AsyncBcast::enable_incremental`). The
    /// ASGD update has a sparse change support only when the objective has
    /// no ridge term (λ = 0); with λ > 0 every version declares a dense
    /// change and resolution falls back to full snapshots.
    pub bcast_ring: usize,
    /// Server-side absorption threads: the model is partitioned into this
    /// many contiguous coordinate shards and every apply pass (ridge
    /// shrink, gradient scatter, snapshot memcpy, SAGA ᾱ absorption) runs
    /// shard-parallel on a persistent pool
    /// ([`crate::absorber::ShardedAbsorber`]). **Bit-identity contract:**
    /// for any `server_threads`, a run with `absorb_batch = 1` reproduces
    /// the single-threaded server bit-exactly — shards are disjoint and
    /// each coordinate sees the serial f64 operation sequence.
    ///
    /// # Example
    /// ```
    /// use async_optim::SolverCfg;
    ///
    /// // A 4-shard server applying one delta at a time: bit-identical to
    /// // the serial server, so byte-gated benches may enable it freely.
    /// let cfg = SolverCfg {
    ///     server_threads: 4,
    ///     absorb_batch: 1,
    ///     ..SolverCfg::default()
    /// };
    /// assert_eq!(cfg.server_threads, 4);
    /// ```
    pub server_threads: usize,
    /// Deltas absorbed per server wave (clamped to at least 1): each wave
    /// blocks for one result, then opportunistically drains up to this
    /// many already-arrived results and folds them per shard before **one**
    /// fused apply pass and **one** snapshot push. Batching reorders the
    /// f64 arithmetic (fold-then-apply ≠ delta-at-a-time in f64, and the
    /// model version now advances once per wave), so `absorb_batch > 1` is
    /// **value-equivalent, not bit-identical**, to the serial server and
    /// is kept out of the byte-gated benches.
    ///
    /// # Example
    /// ```
    /// use async_optim::SolverCfg;
    ///
    /// // Fold up to 4 ready deltas per wave on a 4-shard server — the
    /// // high-throughput configuration of the server-scaling bench.
    /// let cfg = SolverCfg {
    ///     server_threads: 4,
    ///     absorb_batch: 4,
    ///     ..SolverCfg::default()
    /// };
    /// assert_eq!(cfg.absorb_batch, 4);
    /// ```
    pub absorb_batch: usize,
    /// Worker → server delta compression ([`CompressCfg::Off`], the
    /// default, ships raw deltas bit-identically to builds predating the
    /// compression layer). With [`CompressCfg::TopK`], every solver routes
    /// its deltas through a per-partition error-feedback compressor
    /// ([`CompressorBank`]): the shipped message carries only the `k`
    /// largest-magnitude coordinates of the accumulated gradient signal in
    /// the configured wire format, and [`RunReport::result_bytes`] counts
    /// the compressed frame sizes. On ASGD with an incremental broadcast
    /// ring, a non-exact `quant` also quantizes the driver → worker
    /// version-diff patches (`async_core::AsyncBcast::set_patch_quant`).
    pub compress: CompressCfg,
    /// Serving rendezvous (`None`, the default, is bit-identical to builds
    /// predating the serving layer). When set, the solver publishes its
    /// live model broadcast through the feed right after creating it —
    /// concurrent readers (`async-serve`) pin snapshot versions from the
    /// same MVCC ring the training loop pushes into — and folds the feed's
    /// serving counters into [`RunReport::serve`] at run end.
    pub serve_feed: Option<ServeFeed>,
    /// How the run degrades when worker deaths shrink the alive set
    /// ([`DegradePolicy::BestEffort`], the default, reproduces the
    /// pre-supervision behavior: keep going with the survivors, give up
    /// only when nobody is left and no recovery is scheduled). Consulted at
    /// every wave boundary; `Wait` directives block through
    /// [`AsyncContext::await_recovery`] toward supervised respawns and
    /// scripted revivals instead of ending the run early.
    pub degrade: DegradePolicy,
    /// Re-submission bound for tasks lost to worker failures (0, the
    /// default, disables retries bit-identically to older builds). A lost
    /// gradient task is re-issued to a surviving worker at its *original*
    /// model version — staleness accounting and broadcast pins stay honest
    /// — up to this many times before it is abandoned and counted in
    /// [`RunReport::lost_tasks`].
    pub retry_lost: u32,
    /// Directory of the run's durable checkpoint store (`None`, the
    /// default, is bit-identical to builds predating the durability
    /// layer). When set, the solver opens a
    /// [`crate::durable::CheckpointStore`] there, **auto-resumes** from
    /// the newest valid generation it finds (model, solver history,
    /// error-feedback residuals, model version, and update budget — the
    /// run completes the crashed run's `max_updates` total), and writes
    /// each [`SolverCfg::checkpoint_every`]-cadence checkpoint to disk
    /// through a background writer thread, off the training hot path. An
    /// explicit `resume_from` on the solver takes precedence over the
    /// store's contents. The run's durability outcome lands in
    /// [`RunReport::durable`].
    pub durable_dir: Option<std::path::PathBuf>,
}

impl Default for SolverCfg {
    fn default() -> Self {
        Self {
            step: 0.05,
            staleness_damping: false,
            batch_fraction: 0.1,
            barrier: BarrierFilter::Asp,
            max_updates: 200,
            eval_every: 0,
            baseline: 0.0,
            partitions: 0,
            seed: 42,
            eval_threads: ParallelismCfg::sequential(),
            checkpoint_every: 0,
            bcast_ring: 0,
            server_threads: 1,
            absorb_batch: 1,
            compress: CompressCfg::Off,
            serve_feed: None,
            degrade: DegradePolicy::BestEffort,
            retry_lost: 0,
            durable_dir: None,
        }
    }
}

/// Why a [`SolverCfgBuilder`] refused to produce a configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum SolverCfgError {
    /// `batch_fraction` outside `(0, 1]` — a task would sample nothing or
    /// more than its partition.
    BatchFraction(f64),
    /// `absorb_batch == 0` — the server wave could never make progress
    /// (runtime clamps exist for struct-literal configs, but the builder
    /// refuses the contradiction outright).
    ZeroAbsorbBatch,
    /// `server_threads == 0` — the sharded absorber needs at least one
    /// shard.
    ZeroServerThreads,
    /// `compress` is [`CompressCfg::TopK`] with `k == 0` — every shipped
    /// delta would be empty and the residual would grow forever.
    ZeroTopK,
}

impl std::fmt::Display for SolverCfgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolverCfgError::BatchFraction(b) => {
                write!(f, "batch_fraction must lie in (0, 1], got {b}")
            }
            SolverCfgError::ZeroAbsorbBatch => write!(f, "absorb_batch must be at least 1"),
            SolverCfgError::ZeroServerThreads => write!(f, "server_threads must be at least 1"),
            SolverCfgError::ZeroTopK => write!(f, "top-k compression must keep at least 1 entry"),
        }
    }
}

impl std::error::Error for SolverCfgError {}

/// Validating construction for [`SolverCfg`] — the preferred path over
/// struct-literal construction (which stays supported for existing call
/// sites and tests, but checks nothing until the contradictions surface
/// mid-run).
///
/// ```
/// use async_optim::{Objective, SolverCfg};
///
/// let cfg = SolverCfg::builder()
///     .step(0.02)
///     .batch_fraction(0.25)
///     .max_updates(500)
///     .build()
///     .expect("valid configuration");
/// assert_eq!(cfg.max_updates, 500);
/// assert!(SolverCfg::builder().batch_fraction(0.0).build().is_err());
///
/// // The incremental ring only pays off for sparse change supports:
/// // a ridge term makes every update dense, which `lint` flags.
/// let ringed = SolverCfg::builder().bcast_ring(8).build().unwrap();
/// let warnings = ringed.lint(&Objective::LeastSquares { lambda: 1e-3 });
/// assert_eq!(warnings.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct SolverCfgBuilder {
    cfg: SolverCfg,
}

macro_rules! builder_setters {
    ($($(#[$doc:meta])* $name:ident: $ty:ty),* $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $name(mut self, $name: $ty) -> Self {
                self.cfg.$name = $name;
                self
            }
        )*
    };
}

impl SolverCfgBuilder {
    builder_setters! {
        /// Step size γ ([`SolverCfg::step`]).
        step: f64,
        /// Staleness-damped steps ([`SolverCfg::staleness_damping`]).
        staleness_damping: bool,
        /// Mini-batch fraction in `(0, 1]` ([`SolverCfg::batch_fraction`]).
        batch_fraction: f64,
        /// Barrier strategy ([`SolverCfg::barrier`]).
        barrier: BarrierFilter,
        /// Update budget ([`SolverCfg::max_updates`]).
        max_updates: u64,
        /// Trace cadence ([`SolverCfg::eval_every`]).
        eval_every: u64,
        /// Baseline objective ([`SolverCfg::baseline`]).
        baseline: f64,
        /// Partition count ([`SolverCfg::partitions`]).
        partitions: usize,
        /// Sampling seed ([`SolverCfg::seed`]).
        seed: u64,
        /// Driver-side evaluation parallelism ([`SolverCfg::eval_threads`]).
        eval_threads: ParallelismCfg,
        /// Checkpoint cadence ([`SolverCfg::checkpoint_every`]).
        checkpoint_every: u64,
        /// Incremental-broadcast ring capacity ([`SolverCfg::bcast_ring`]).
        bcast_ring: usize,
        /// Server absorption shards ([`SolverCfg::server_threads`]).
        server_threads: usize,
        /// Deltas folded per server wave ([`SolverCfg::absorb_batch`]).
        absorb_batch: usize,
        /// Worker → server delta compression ([`SolverCfg::compress`]).
        compress: CompressCfg,
        /// Degradation policy under worker deaths ([`SolverCfg::degrade`]).
        degrade: DegradePolicy,
        /// Lost-task re-submission bound ([`SolverCfg::retry_lost`]).
        retry_lost: u32,
    }

    /// Attaches a serving rendezvous ([`SolverCfg::serve_feed`]).
    pub fn serve_feed(mut self, feed: ServeFeed) -> Self {
        self.cfg.serve_feed = Some(feed);
        self
    }

    /// Attaches a durable checkpoint store ([`SolverCfg::durable_dir`]).
    pub fn durable_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.cfg.durable_dir = Some(dir.into());
        self
    }

    /// Validates and produces the configuration.
    pub fn build(self) -> Result<SolverCfg, SolverCfgError> {
        let cfg = self.cfg;
        if !(cfg.batch_fraction > 0.0 && cfg.batch_fraction <= 1.0) {
            return Err(SolverCfgError::BatchFraction(cfg.batch_fraction));
        }
        if cfg.absorb_batch == 0 {
            return Err(SolverCfgError::ZeroAbsorbBatch);
        }
        if cfg.server_threads == 0 {
            return Err(SolverCfgError::ZeroServerThreads);
        }
        if matches!(cfg.compress, CompressCfg::TopK { k: 0, .. }) {
            return Err(SolverCfgError::ZeroTopK);
        }
        Ok(cfg)
    }
}

impl SolverCfg {
    /// A [`SolverCfgBuilder`] seeded with the defaults.
    pub fn builder() -> SolverCfgBuilder {
        SolverCfgBuilder {
            cfg: SolverCfg::default(),
        }
    }

    /// Configuration smells that are legal but probably not what the
    /// caller wants, given the objective the run will optimize:
    ///
    /// * a positive [`SolverCfg::bcast_ring`] with a ridge term (λ > 0),
    ///   where every model update has a **dense** change support, so
    ///   incremental resolution falls back to full snapshots and the ring
    ///   buys nothing;
    /// * [`CompressCfg::TopK`] with a ridge term (λ > 0), where the
    ///   server's shrink touches every coordinate each update while the
    ///   compressed delta restricts the gradient signal to `k` of them —
    ///   the dense-support ridge dynamics dominate and the sparsified
    ///   messages mostly buy residual lag.
    pub fn lint(&self, objective: &Objective) -> Vec<String> {
        let mut warnings = Vec::new();
        if self.bcast_ring > 0 && objective.lambda() > 0.0 {
            warnings.push(format!(
                "bcast_ring = {} with λ = {}: ridge updates have dense change \
                 supports, so every incremental resolution falls back to a full \
                 snapshot — the ring adds bookkeeping without saving bytes",
                self.bcast_ring,
                objective.lambda()
            ));
        }
        if let CompressCfg::TopK { k, .. } = self.compress {
            if objective.lambda() > 0.0 {
                warnings.push(format!(
                    "compress = top-{k} with λ = {}: the ridge term gives every \
                     update a dense support, so sparsifying the gradient messages \
                     mostly defers signal into the error-feedback residual instead \
                     of saving convergence-relevant bytes",
                    objective.lambda()
                ));
            }
        }
        warnings
    }

    /// Resume-time smells, checked against the checkpoint a run is about
    /// to restore (auto-resume or explicit `resume_from`):
    ///
    /// * resuming a [`CompressCfg::TopK`] run from a checkpoint carrying
    ///   **no error-feedback residuals** (a pre-durability format-1
    ///   snapshot, or one captured with compression off): the compressors
    ///   restart cold, silently dropping the deferred gradient signal the
    ///   crashed run had accumulated — the run is *not* a continuation of
    ///   the original trajectory.
    pub fn lint_resume(&self, ckpt: &Checkpoint) -> Vec<String> {
        let mut warnings = Vec::new();
        if let CompressCfg::TopK { k, .. } = self.compress {
            if !ckpt.has_residuals() {
                warnings.push(format!(
                    "resuming a top-{k} compressed run from a checkpoint without \
                     error-feedback residuals (legacy format or captured with \
                     compression off): the compressors restart cold and the \
                     crashed run's deferred gradient signal is lost — the resumed \
                     trajectory diverges from an uninterrupted one",
                ));
            }
        }
        warnings
    }
}

/// Everything one solver run produces.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// `(virtual time, objective − baseline)` samples.
    pub trace: ConvergenceTrace,
    /// Server model updates applied.
    pub updates: u64,
    /// Gradient tasks whose results were consumed.
    pub tasks_completed: u64,
    /// Maximum staleness observed across consumed results.
    pub max_staleness: u64,
    /// Virtual instant of the last applied update (the run's wall clock).
    pub wall_clock: VTime,
    /// Mean worker wait time over the run (§6.3's metric).
    pub mean_wait: VDur,
    /// Bytes shipped to workers over the run.
    pub bytes_shipped: u64,
    /// Stored feature entries touched by consumed gradient tasks — the
    /// deterministic work measure of the gradient hot path (dense blocks
    /// count the full row; CSR blocks only their nonzeros).
    pub grad_entries: u64,
    /// Modeled wire bytes of the consumed gradient-result messages
    /// (sparse deltas ship only their support).
    pub result_bytes: u64,
    /// Per-worker task clocks at the end of the run (one entry per worker
    /// the cluster ended with — mid-run joins appear at the tail).
    pub worker_clocks: Vec<u64>,
    /// The final model.
    pub final_w: Vec<f64>,
    /// Final objective value (not baseline-subtracted).
    pub final_objective: f64,
    /// Server-state checkpoints captured every
    /// [`SolverCfg::checkpoint_every`] updates (empty when disabled).
    pub checkpoints: Vec<Checkpoint>,
    /// Serving counters accumulated by readers attached through
    /// [`SolverCfg::serve_feed`] over the run (all zeros without one).
    pub serve: ServeCounters,
    /// Tasks abandoned to worker failures over this run (losses that were
    /// not, or could no longer be, retried under [`SolverCfg::retry_lost`]).
    pub lost_tasks: u64,
    /// Lost tasks successfully re-submitted to surviving workers over this
    /// run (always 0 with retries off).
    pub retried_tasks: u64,
    /// Durability outcome under [`SolverCfg::durable_dir`]: the generation
    /// the run auto-resumed from (if any) and the store's write counters
    /// (all defaults without a durable store).
    pub durable: DurableStats,
}

/// An asynchronous optimization algorithm runnable on an [`AsyncContext`].
pub trait AsyncSolver {
    /// Short name for reports ("asgd", "asaga", ...).
    fn name(&self) -> &'static str;

    /// Runs the algorithm to `cfg.max_updates` model updates. The context
    /// must be fresh (no in-flight tasks); the solver drains its own
    /// outstanding tasks before returning.
    fn run(&mut self, ctx: &mut AsyncContext, dataset: &Dataset, cfg: &SolverCfg) -> RunReport;
}

/// A mini-batch gradient computed by one task — the message shape shared
/// by the plain-SGD-family solvers ([`crate::Asgd`], [`crate::AsyncMsgd`]).
pub(crate) struct GradMsg {
    /// `(1/b) Σ f'(xᵢᵀw, yᵢ)·xᵢ` over the sampled rows (no ridge term),
    /// sparse over CSR partitions. With compression on this is the
    /// dequantized top-k selection, not the raw gradient.
    pub g: GradDelta,
    /// Stored feature entries the gradient kernel touched.
    pub entries: u64,
    /// Modeled wire bytes of this message: the delta's own encoding when
    /// compression is off, the compressed frame size otherwise.
    pub wire_bytes: u64,
}

/// Submits one [`GradMsg`] gradient wave: a mini-batch gradient task per
/// barrier-admitted worker, with only the current model's 8-byte version
/// ID as task payload and a cost of ~2 work units per sampled nonzero
/// (one fused margins-plus-gather pass). Pins the submission version once
/// per in-flight task; callers pair each pin with an unpin at consumption
/// (or run end for lost tasks).
///
/// Tasks draw every transient buffer from `pool` and resolve the model
/// through the incremental path (`value_incremental`, which is exactly the
/// plain fetch when the broadcast's ring is disabled); results are
/// bit-identical to the pre-pool implementation.
#[allow(clippy::too_many_arguments)]
pub(crate) fn submit_grad_wave(
    ctx: &mut AsyncContext,
    rdd: &Rdd<Block>,
    bcast: &AsyncBcast<Vec<f64>>,
    cfg: &SolverCfg,
    minibatch_hint: u64,
    objective: Objective,
    pool: &ScratchPool,
    bank: &CompressorBank,
) -> Vec<usize> {
    let handle = bcast.handle();
    let version = ctx.version();
    let (seed, fraction) = (cfg.seed, cfg.batch_fraction);
    let compress = cfg.compress;
    let pool = pool.clone();
    let bank = bank.clone();
    let task = move |wctx: &mut WorkerCtx, data: Vec<Block>, part: usize| {
        let block = &data[0];
        let w = handle.value_incremental(wctx);
        let mut scratch = pool.checkout();
        let mut rng = sampler::derive_rng(seed, version, part as u64);
        sampler::sample_fraction_into(&mut rng, block.rows(), fraction, &mut scratch.rows);
        let g = objective.minibatch_grad_delta_pooled(block, &w, &mut scratch, &pool);
        let entries = block.features().rows_nnz(&scratch.rows);
        pool.give_back(scratch);
        let (g, wire_bytes) = match compress {
            CompressCfg::Off => {
                let wire = g.encoded_len();
                (g, wire)
            }
            CompressCfg::TopK { k, quant } => bank.compress(part, g, k, quant, &pool),
        };
        GradMsg {
            g,
            entries,
            wire_bytes,
        }
    };
    let opts = SubmitOpts {
        extra_bytes: AsyncBcast::<Vec<f64>>::id_ship_bytes(0),
        cost_scale: 2.0 * fraction,
        minibatch: minibatch_hint,
        ..SubmitOpts::default()
    };
    // The wire form for the remote backend: the request ships the model's
    // wire plan plus the pure sampling inputs, and the worker re-derives
    // the identical batch (`derive_rng` is a pure function of seed,
    // version, and partition). In-process engines ignore it.
    let routine =
        crate::remote::grad_routine(rdd, bcast, objective, seed, version, fraction, compress);
    let submitted = ctx.async_reduce_wired(rdd, &cfg.barrier, opts, task, Some(&routine));
    // Pin the submission version per in-flight task so a queued task on
    // the threaded backend can never see its model version pruned.
    for _ in &submitted {
        bcast.pin(version);
    }
    submitted
}

/// Installs the run's supervision knobs on the context and returns the
/// `(lost, retried)` counter baselines, so the report can attribute only
/// this run's losses (contexts are reused across runs).
pub(crate) fn begin_supervised(ctx: &mut AsyncContext, cfg: &SolverCfg) -> (u64, u64) {
    ctx.set_degrade_policy(cfg.degrade);
    ctx.set_retry_lost(cfg.retry_lost);
    (ctx.lost_tasks(), ctx.retried_tasks())
}

/// The policy gate at every wave boundary: `Proceed` falls through,
/// `Wait` blocks toward the engine's next scheduled recovery, `Halt` (or
/// a wait nothing can satisfy) tells the caller to end the run. With the
/// default policy and a non-empty alive set this is a pure read.
pub(crate) fn wave_admitted(ctx: &mut AsyncContext) -> bool {
    match ctx.degrade_directive() {
        WaveDirective::Proceed => true,
        WaveDirective::Halt => false,
        WaveDirective::Wait => ctx.await_recovery(),
    }
}

/// The stall decision after a fresh submission admitted nobody: wait for a
/// scheduled recovery unless the policy already says halt. Returns `true`
/// when the caller should retry the wave. When nothing is scheduled,
/// `await_recovery` returns immediately and this reproduces the historical
/// unconditional give-up.
pub(crate) fn stalled_should_wait(ctx: &mut AsyncContext) -> bool {
    !matches!(ctx.degrade_directive(), WaveDirective::Halt) && ctx.await_recovery()
}

/// The per-worker ledger of history-broadcast pins held by in-flight (or
/// lost) tasks. Under static membership a worker holds at most one pin,
/// but under churn a worker can accumulate pins from *lost* incarnations
/// (a task dies with its worker and never surfaces) while its revived self
/// holds a live one — so the ledger keeps a list per worker and releases
/// every leftover at run end. It also grows on demand: mid-run joins push
/// worker ids past the cluster's starting size.
pub(crate) struct PinLedger {
    by_worker: Vec<Vec<u64>>,
}

impl PinLedger {
    /// A ledger for a cluster starting with `n` workers.
    pub fn new(n: usize) -> Self {
        Self {
            by_worker: vec![Vec::new(); n],
        }
    }

    /// Records that `worker`'s newly submitted task pinned `version`.
    pub fn record(&mut self, worker: usize, version: u64) {
        if self.by_worker.len() <= worker {
            self.by_worker.resize_with(worker + 1, Vec::new);
        }
        self.by_worker[worker].push(version);
    }

    /// Records a whole submitted wave at `version`.
    pub fn record_wave(&mut self, version: u64, ws: &[usize]) {
        for &w in ws {
            self.record(w, version);
        }
    }

    /// Consumes one pin of `version` held by `worker` (its task's result
    /// arrived and the caller unpinned the broadcast). A retried task
    /// completes on a *different* worker than the one whose submission
    /// recorded the pin, so a primary-key miss falls back to consuming the
    /// version wherever it was recorded — without the fallback the
    /// original entry would linger and `release_leftovers` would unpin a
    /// version the consumer already unpinned.
    pub fn consume(&mut self, worker: usize, version: u64) {
        if let Some(pins) = self.by_worker.get_mut(worker) {
            if let Some(i) = pins.iter().position(|&v| v == version) {
                pins.swap_remove(i);
                return;
            }
        }
        for pins in &mut self.by_worker {
            if let Some(i) = pins.iter().position(|&v| v == version) {
                pins.swap_remove(i);
                return;
            }
        }
    }

    /// Releases every leftover pin — tasks lost to worker failures never
    /// surface, so their versions are unpinned here at run end.
    pub fn release_leftovers(self, bcast: &AsyncBcast<Vec<f64>>) {
        for v in self.by_worker.into_iter().flatten() {
            bcast.unpin(v);
        }
    }
}

/// True when `now` crossed a multiple of `every` that `prev` had not yet
/// reached — the wave-aware replacement for `now % every == 0`: identical
/// for unit steps, and still firing once per crossed multiple when a
/// batched wave advances `updates` by more than one.
pub(crate) fn crossed_multiple(prev: u64, now: u64, every: u64) -> bool {
    now / every > prev / every
}

/// Collects one absorption wave: blocks for the first result, then drains
/// up to `want − 1` more that have already arrived (`want` is the absorb
/// batch capped at the remaining update budget). With `want == 1` this is
/// exactly one `collect` call. `wave` is a reused buffer; it comes back
/// empty only when every in-flight task was lost.
pub(crate) fn collect_wave<R: Send + 'static>(
    ctx: &mut AsyncContext,
    want: usize,
    wave: &mut Vec<async_core::Tagged<R>>,
) {
    wave.clear();
    ctx.collect_up_to_into(want.max(1), wave);
}

/// Drains in-flight [`GradMsg`] tasks (discarding their gradients) and
/// releases every outstanding pin — including those of tasks lost to
/// worker failures, which never surface — so the context and the history
/// broadcast are clean for the next run.
pub(crate) fn drain_grad_tasks(
    ctx: &mut AsyncContext,
    bcast: &AsyncBcast<Vec<f64>>,
    mut pinned: PinLedger,
) {
    // The run is over: abandon queued retries up front so the drain
    // doesn't re-issue work nobody will consume, and again afterwards for
    // tasks lost (and left unplaceable) during the drain itself.
    ctx.cancel_retries();
    while let Some(t) = ctx.collect::<GradMsg>() {
        bcast.unpin(t.attrs.issued_version);
        pinned.consume(t.attrs.worker, t.attrs.issued_version);
    }
    ctx.cancel_retries();
    pinned.release_leftovers(bcast);
}

/// Partitions `dataset` into `cfg.partitions` blocks (default: one per
/// worker) and wraps them in a one-block-per-partition RDD whose cost
/// hints are the blocks' nonzero counts.
pub fn block_rdd(
    ctx: &AsyncContext,
    dataset: &Dataset,
    cfg: &SolverCfg,
) -> (Vec<Block>, Rdd<Block>) {
    let nparts = if cfg.partitions == 0 {
        ctx.workers()
    } else {
        cfg.partitions
    };
    let blocks = dataset.partition(nparts);
    let costs: Vec<f64> = blocks.iter().map(|b| b.nnz() as f64).collect();
    let rdd = Rdd::parallelize_with_cost(blocks.iter().map(|b| vec![b.clone()]).collect(), costs);
    (blocks, rdd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use async_cluster::{ClusterSpec, CommModel, DelayModel};
    use async_data::SynthSpec;

    #[test]
    fn builder_matches_defaults_and_applies_setters() {
        let built = SolverCfg::builder().build().unwrap();
        let defaults = SolverCfg::default();
        assert_eq!(built.step, defaults.step);
        assert_eq!(built.batch_fraction, defaults.batch_fraction);
        assert_eq!(built.max_updates, defaults.max_updates);
        assert_eq!(built.seed, defaults.seed);
        assert_eq!(built.server_threads, defaults.server_threads);
        assert_eq!(built.absorb_batch, defaults.absorb_batch);
        let cfg = SolverCfg::builder()
            .step(0.02)
            .batch_fraction(0.5)
            .max_updates(77)
            .bcast_ring(4)
            .absorb_batch(3)
            .build()
            .unwrap();
        assert_eq!(cfg.step, 0.02);
        assert_eq!(cfg.batch_fraction, 0.5);
        assert_eq!(cfg.max_updates, 77);
        assert_eq!(cfg.bcast_ring, 4);
        assert_eq!(cfg.absorb_batch, 3);
    }

    #[test]
    fn builder_rejects_contradictions() {
        for bad in [0.0, -0.1, 1.5, f64::NAN] {
            assert!(matches!(
                SolverCfg::builder().batch_fraction(bad).build(),
                Err(SolverCfgError::BatchFraction(_))
            ));
        }
        assert!(matches!(
            SolverCfg::builder().absorb_batch(0).build(),
            Err(SolverCfgError::ZeroAbsorbBatch)
        ));
        assert!(matches!(
            SolverCfg::builder().server_threads(0).build(),
            Err(SolverCfgError::ZeroServerThreads)
        ));
        assert!(matches!(
            SolverCfg::builder()
                .compress(CompressCfg::TopK {
                    k: 0,
                    quant: async_linalg::Quant::I8
                })
                .build(),
            Err(SolverCfgError::ZeroTopK)
        ));
    }

    #[test]
    fn lint_flags_ring_with_dense_ridge_support() {
        let ringed = SolverCfg::builder().bcast_ring(8).build().unwrap();
        assert_eq!(
            ringed.lint(&Objective::LeastSquares { lambda: 1e-3 }).len(),
            1
        );
        assert!(ringed.lint(&Objective::Logistic { lambda: 0.0 }).is_empty());
        let no_ring = SolverCfg::builder().build().unwrap();
        assert!(no_ring
            .lint(&Objective::LeastSquares { lambda: 1e-3 })
            .is_empty());
    }

    #[test]
    fn lint_flags_top_k_with_dense_ridge_support() {
        let compressed = SolverCfg::builder()
            .compress(CompressCfg::TopK {
                k: 16,
                quant: async_linalg::Quant::Exact,
            })
            .build()
            .unwrap();
        // λ > 0 makes every update dense-support: one warning, naming k.
        let warnings = compressed.lint(&Objective::LeastSquares { lambda: 1e-3 });
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("top-16"));
        // λ = 0 (sparse supports) is the intended regime: silent.
        assert!(compressed
            .lint(&Objective::Logistic { lambda: 0.0 })
            .is_empty());
        // Both smells at once stack: ring + compression against a ridge.
        let both = SolverCfg::builder()
            .bcast_ring(8)
            .compress(CompressCfg::TopK {
                k: 16,
                quant: async_linalg::Quant::Exact,
            })
            .build()
            .unwrap();
        assert_eq!(
            both.lint(&Objective::LeastSquares { lambda: 1e-3 }).len(),
            2
        );
    }

    #[test]
    fn block_rdd_defaults_to_one_partition_per_worker() {
        let ctx = AsyncContext::sim(
            ClusterSpec::homogeneous(4, DelayModel::None).with_comm(CommModel::free()),
        );
        let (d, _) = SynthSpec::dense("t", 40, 4, 1).generate().unwrap();
        let (blocks, rdd) = block_rdd(&ctx, &d, &SolverCfg::default());
        assert_eq!(blocks.len(), 4);
        assert_eq!(rdd.num_partitions(), 4);
        let total: usize = blocks.iter().map(|b| b.rows()).sum();
        assert_eq!(total, 40);
        // Cost hints reflect block nonzeros (dense: rows × cols).
        assert_eq!(rdd.cost_hint(0), (blocks[0].rows() * 4) as f64);
    }
}
