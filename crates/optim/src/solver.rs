//! The [`AsyncSolver`] interface and shared run machinery.
//!
//! A solver drives an [`AsyncContext`] with gradient tasks under a
//! [`BarrierFilter`] and applies collected updates server-side — the shape
//! of the paper's Listings 3–4. Everything a run produces (convergence
//! trace, staleness extremes, wait/byte accounting) lands in a
//! [`RunReport`] so benches and tests read one structure.

use async_cluster::{ConvergenceTrace, VDur, VTime};
use async_core::{AsyncContext, BarrierFilter};
use async_data::{Block, Dataset};
use async_linalg::ParallelismCfg;
use sparklet::Rdd;

/// Configuration shared by all solvers.
#[derive(Debug, Clone)]
pub struct SolverCfg {
    /// Step size γ.
    pub step: f64,
    /// If true, scale each applied step by `1/(1 + staleness)` — the
    /// bounded-staleness damping rule the paper discusses for ASGD.
    pub staleness_damping: bool,
    /// Mini-batch fraction `b` of each partition per task (eq. 5).
    pub batch_fraction: f64,
    /// Barrier-control strategy admitting workers to new tasks.
    pub barrier: BarrierFilter,
    /// Stop after this many server model updates.
    pub max_updates: u64,
    /// Record a convergence sample every this many updates (0 = only the
    /// initial and final points).
    pub eval_every: u64,
    /// Baseline objective subtracted in the trace (the paper's
    /// `objective − baseline` error metric).
    pub baseline: f64,
    /// Number of data partitions (0 = one per worker).
    pub partitions: usize,
    /// Sampling seed; runs are pure functions of `(cfg, cluster spec)`.
    pub seed: u64,
    /// Driver-side parallelism for objective evaluations.
    pub eval_threads: ParallelismCfg,
}

impl Default for SolverCfg {
    fn default() -> Self {
        Self {
            step: 0.05,
            staleness_damping: false,
            batch_fraction: 0.1,
            barrier: BarrierFilter::Asp,
            max_updates: 200,
            eval_every: 0,
            baseline: 0.0,
            partitions: 0,
            seed: 42,
            eval_threads: ParallelismCfg::sequential(),
        }
    }
}

/// Everything one solver run produces.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// `(virtual time, objective − baseline)` samples.
    pub trace: ConvergenceTrace,
    /// Server model updates applied.
    pub updates: u64,
    /// Gradient tasks whose results were consumed.
    pub tasks_completed: u64,
    /// Maximum staleness observed across consumed results.
    pub max_staleness: u64,
    /// Virtual instant of the last applied update (the run's wall clock).
    pub wall_clock: VTime,
    /// Mean worker wait time over the run (§6.3's metric).
    pub mean_wait: VDur,
    /// Bytes shipped to workers over the run.
    pub bytes_shipped: u64,
    /// Per-worker task clocks at the end of the run.
    pub worker_clocks: Vec<u64>,
    /// The final model.
    pub final_w: Vec<f64>,
    /// Final objective value (not baseline-subtracted).
    pub final_objective: f64,
}

/// An asynchronous optimization algorithm runnable on an [`AsyncContext`].
pub trait AsyncSolver {
    /// Short name for reports ("asgd", "asaga", ...).
    fn name(&self) -> &'static str;

    /// Runs the algorithm to `cfg.max_updates` model updates. The context
    /// must be fresh (no in-flight tasks); the solver drains its own
    /// outstanding tasks before returning.
    fn run(&mut self, ctx: &mut AsyncContext, dataset: &Dataset, cfg: &SolverCfg) -> RunReport;
}

/// Partitions `dataset` into `cfg.partitions` blocks (default: one per
/// worker) and wraps them in a one-block-per-partition RDD whose cost
/// hints are the blocks' nonzero counts.
pub fn block_rdd(
    ctx: &AsyncContext,
    dataset: &Dataset,
    cfg: &SolverCfg,
) -> (Vec<Block>, Rdd<Block>) {
    let nparts = if cfg.partitions == 0 {
        ctx.workers()
    } else {
        cfg.partitions
    };
    let blocks = dataset.partition(nparts);
    let costs: Vec<f64> = blocks.iter().map(|b| b.nnz() as f64).collect();
    let rdd = Rdd::parallelize_with_cost(blocks.iter().map(|b| vec![b.clone()]).collect(), costs);
    (blocks, rdd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use async_cluster::{ClusterSpec, CommModel, DelayModel};
    use async_data::SynthSpec;

    #[test]
    fn block_rdd_defaults_to_one_partition_per_worker() {
        let ctx = AsyncContext::sim(
            ClusterSpec::homogeneous(4, DelayModel::None).with_comm(CommModel::free()),
        );
        let (d, _) = SynthSpec::dense("t", 40, 4, 1).generate().unwrap();
        let (blocks, rdd) = block_rdd(&ctx, &d, &SolverCfg::default());
        assert_eq!(blocks.len(), 4);
        assert_eq!(rdd.num_partitions(), 4);
        let total: usize = blocks.iter().map(|b| b.rows()).sum();
        assert_eq!(total, 40);
        // Cost hints reflect block nonzeros (dense: rows × cols).
        assert_eq!(rdd.cost_hint(0), (blocks[0].rows() * 4) as f64);
    }
}
