//! The optimization objectives of the paper's evaluation (§2, §6).
//!
//! Both are finite sums `F(w) = (1/n) Σⱼ f(xⱼᵀw, yⱼ) + (λ/2)‖w‖²` over the
//! rows of a dataset, which is the shape every solver in this crate
//! exploits: a mini-batch gradient is a mean of per-row terms
//! `f'(xⱼᵀw, yⱼ)·xⱼ`, and the ridge term is applied server-side so tasks
//! never double-count it.

use async_data::{Block, Dataset};
use async_linalg::parallel::{par_matvec, par_matvec_t, par_residual_sq};
use async_linalg::{dense, GradDelta, Matrix, ParallelismCfg, SparseVec};

use crate::scratch::{ScratchPool, TaskScratch};

/// A row-separable regularized objective.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Objective {
    /// `(1/n)‖A·w − y‖² + (λ/2)‖w‖²` — the paper's evaluation metric
    /// objective.
    LeastSquares {
        /// Ridge coefficient λ ≥ 0.
        lambda: f64,
    },
    /// `(1/n) Σ ln(1 + exp(−yⱼ·xⱼᵀw)) + (λ/2)‖w‖²` with labels in {−1, +1}
    /// — the paper's logistic-regression workload (eq. 2).
    Logistic {
        /// Ridge coefficient λ ≥ 0.
        lambda: f64,
    },
}

impl Objective {
    /// The ridge coefficient.
    pub fn lambda(&self) -> f64 {
        match *self {
            Objective::LeastSquares { lambda } | Objective::Logistic { lambda } => lambda,
        }
    }

    /// Per-row loss at margin `z = xᵀw` with label `y`.
    pub fn loss(&self, z: f64, y: f64) -> f64 {
        match self {
            Objective::LeastSquares { .. } => {
                let e = z - y;
                e * e
            }
            Objective::Logistic { .. } => {
                // ln(1 + e^m) computed stably for m = −y·z.
                let m = -y * z;
                m.max(0.0) + (-m.abs()).exp().ln_1p()
            }
        }
    }

    /// Maps a raw margin `z = xᵀw` to the quantity a serving layer hands
    /// back to callers: the identity for regression, the positive-class
    /// probability `σ(z)` for logistic classification (stable on both
    /// tails).
    pub fn predict(&self, z: f64) -> f64 {
        match self {
            Objective::LeastSquares { .. } => z,
            Objective::Logistic { .. } => {
                if z >= 0.0 {
                    1.0 / (1.0 + (-z).exp())
                } else {
                    let e = z.exp();
                    e / (1.0 + e)
                }
            }
        }
    }

    /// Derivative of the per-row loss with respect to the margin `z`.
    pub fn dloss(&self, z: f64, y: f64) -> f64 {
        match self {
            Objective::LeastSquares { .. } => 2.0 * (z - y),
            Objective::Logistic { .. } => {
                // −y·σ(−y·z), computed without overflow on either tail.
                let t = y * z;
                let s = if t >= 0.0 {
                    let e = (-t).exp();
                    e / (1.0 + e)
                } else {
                    1.0 / (1.0 + t.exp())
                };
                -y * s
            }
        }
    }

    /// Mini-batch data gradient over `rows` of `block`:
    /// `out = (1/|rows|) Σ f'(xᵢᵀw, yᵢ)·xᵢ` (no ridge term — the server
    /// adds `λ·w` when applying the update). `out` is overwritten.
    pub fn minibatch_grad(&self, block: &Block, rows: &[u32], w: &[f64], out: &mut [f64]) {
        dense::zero(out);
        if rows.is_empty() {
            return;
        }
        let features = block.features();
        let labels = block.labels();
        let scale = 1.0 / rows.len() as f64;
        for &r in rows {
            let i = r as usize;
            let z = features.row_dot(i, w);
            let d = self.dloss(z, labels[i]);
            features.row_axpy(i, scale * d, out);
        }
    }

    /// Mini-batch data gradient as a [`GradDelta`]: identical semantics to
    /// [`Objective::minibatch_grad`], but CSR blocks take the sparse fast
    /// path — margins via [`async_linalg::CsrMatrix::rows_dot`], then one
    /// [`async_linalg::CsrMatrix::gather_axpy`] over the per-row loss
    /// derivatives — so the gradient's cost and size scale with the batch's
    /// stored nonzeros, never with the feature dimension. Dense blocks
    /// fall back to the dense kernel unchanged.
    pub fn minibatch_grad_delta(&self, block: &Block, rows: &[u32], w: &[f64]) -> GradDelta {
        match block.features() {
            Matrix::Sparse(csr) => {
                if rows.is_empty() {
                    return GradDelta::zero_sparse(block.cols());
                }
                let labels = block.labels();
                let scale = 1.0 / rows.len() as f64;
                let margins = csr.rows_dot(rows, w);
                let coefs: Vec<f64> = rows
                    .iter()
                    .zip(margins)
                    .map(|(&r, z)| scale * self.dloss(z, labels[r as usize]))
                    .collect();
                GradDelta::Sparse(csr.gather_axpy(rows, &coefs))
            }
            Matrix::Dense(_) => {
                let mut g = vec![0.0; block.cols()];
                self.minibatch_grad(block, rows, w, &mut g);
                GradDelta::Dense(g)
            }
        }
    }

    /// The zero-allocation variant of [`Objective::minibatch_grad_delta`]:
    /// the batch is `scratch.rows` (sampled there by the caller), the
    /// margin/coefficient buffers come from `scratch`, and the returned
    /// delta's backing arrays come from `pool` — returned to it by the
    /// server via [`ScratchPool::recycle_delta`] after absorption. Values
    /// are **bit-identical** to `minibatch_grad_delta` (same kernels, same
    /// operation order); only the buffers' provenance differs.
    pub fn minibatch_grad_delta_pooled(
        &self,
        block: &Block,
        w: &[f64],
        scratch: &mut TaskScratch,
        pool: &ScratchPool,
    ) -> GradDelta {
        let TaskScratch {
            rows,
            margins,
            coefs,
            pairs,
            ..
        } = scratch;
        match block.features() {
            Matrix::Sparse(csr) => {
                if rows.is_empty() {
                    return GradDelta::zero_sparse(block.cols());
                }
                let labels = block.labels();
                let scale = 1.0 / rows.len() as f64;
                csr.rows_dot_into(rows, w, margins);
                coefs.clear();
                coefs.extend(
                    rows.iter()
                        .zip(margins.iter())
                        .map(|(&r, &z)| scale * self.dloss(z, labels[r as usize])),
                );
                let (mut idx, mut val) = pool.checkout_sparse();
                csr.gather_axpy_into(rows, coefs, pairs, &mut idx, &mut val);
                GradDelta::Sparse(
                    SparseVec::new(idx, val, block.cols())
                        .expect("gather kernel produces valid sparse output"),
                )
            }
            Matrix::Dense(_) => {
                let mut g = pool.checkout_dense(block.cols());
                self.minibatch_grad(block, rows, w, &mut g);
                GradDelta::Dense(g)
            }
        }
    }

    /// Full-dataset gradient `(1/n) Σ f'(xⱼᵀw, yⱼ)·xⱼ` (no ridge term),
    /// evaluated driver-side. Used to seed SAGA's gradient table average.
    pub fn full_grad(&self, cfg: ParallelismCfg, dataset: &Dataset, w: &[f64], out: &mut [f64]) {
        let n = dataset.rows();
        if n == 0 {
            dense::zero(out);
            return;
        }
        let mut z = vec![0.0; n];
        par_matvec(cfg, dataset.features(), w, &mut z);
        let labels = dataset.labels();
        for i in 0..n {
            z[i] = self.dloss(z[i], labels[i]) / n as f64;
        }
        par_matvec_t(cfg, dataset.features(), &z, out);
    }

    /// The full objective `F(w)` over the dataset.
    pub fn full_objective(&self, cfg: ParallelismCfg, dataset: &Dataset, w: &[f64]) -> f64 {
        let n = dataset.rows().max(1) as f64;
        let reg = 0.5 * self.lambda() * dense::norm2_sq(w);
        match self {
            Objective::LeastSquares { .. } => {
                par_residual_sq(cfg, dataset.features(), w, dataset.labels()) / n + reg
            }
            Objective::Logistic { .. } => {
                let mut z = vec![0.0; dataset.rows()];
                par_matvec(cfg, dataset.features(), w, &mut z);
                let labels = dataset.labels();
                let total: f64 = z
                    .iter()
                    .zip(labels)
                    .map(|(&zi, &yi)| self.loss(zi, yi))
                    .sum();
                total / n + reg
            }
        }
    }

    /// High-precision optimum of the **least-squares** objective via CGLS
    /// (the baseline the paper subtracts from convergence curves). Returns
    /// `None` for objectives without a direct solver.
    pub fn optimum(&self, cfg: ParallelismCfg, dataset: &Dataset) -> Option<f64> {
        match self {
            Objective::LeastSquares { lambda } => {
                // min (1/n)‖Aw−y‖² + (λ/2)‖w‖² ⇔ min ‖Aw−y‖² + (nλ/2)‖w‖².
                let n = dataset.rows().max(1) as f64;
                let res = async_linalg::solve::cgls(
                    cfg,
                    dataset.features(),
                    dataset.labels(),
                    n * lambda / 2.0,
                    1e-12,
                    10 * dataset.cols().max(100),
                );
                Some(self.full_objective(cfg, dataset, &res.w))
            }
            Objective::Logistic { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use async_data::SynthSpec;

    fn dataset() -> Dataset {
        SynthSpec::dense("obj", 60, 8, 11).generate().unwrap().0
    }

    #[test]
    fn least_squares_loss_and_derivative_agree() {
        let o = Objective::LeastSquares { lambda: 0.0 };
        let (z, y) = (1.5, 0.5);
        assert!((o.loss(z, y) - 1.0).abs() < 1e-15);
        // Numerical derivative check.
        let h = 1e-6;
        let num = (o.loss(z + h, y) - o.loss(z - h, y)) / (2.0 * h);
        assert!((o.dloss(z, y) - num).abs() < 1e-6);
    }

    #[test]
    fn logistic_loss_is_stable_and_consistent() {
        let o = Objective::Logistic { lambda: 0.0 };
        for &(z, y) in &[
            (0.0, 1.0),
            (3.0, -1.0),
            (-40.0, 1.0),
            (40.0, 1.0),
            (700.0, -1.0),
            (-700.0, -1.0),
        ] {
            let l = o.loss(z, y);
            assert!(l.is_finite() && l >= 0.0, "loss({z},{y}) = {l}");
            let h = 1e-5;
            let num = (o.loss(z + h, y) - o.loss(z - h, y)) / (2.0 * h);
            assert!(
                (o.dloss(z, y) - num).abs() < 1e-4,
                "dloss mismatch at ({z},{y})"
            );
        }
        // Correct classification with big margin → tiny loss.
        assert!(o.loss(40.0, 1.0) < 1e-15);
    }

    #[test]
    fn minibatch_grad_matches_full_grad_on_full_batch() {
        let d = dataset();
        let o = Objective::Logistic { lambda: 0.3 };
        let w: Vec<f64> = (0..d.cols()).map(|i| (i as f64 - 3.0) * 0.1).collect();
        let blocks = d.partition(1);
        let rows: Vec<u32> = (0..d.rows() as u32).collect();
        let mut mb = vec![0.0; d.cols()];
        o.minibatch_grad(&blocks[0], &rows, &w, &mut mb);
        let mut full = vec![0.0; d.cols()];
        o.full_grad(ParallelismCfg::sequential(), &d, &w, &mut full);
        for (a, b) in mb.iter().zip(&full) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
    }

    #[test]
    fn sparse_grad_delta_matches_dense_kernel() {
        // One logical dataset, both storages: the sparse gather path must
        // agree with the dense reference kernel on every sampled batch.
        let (sd, _) = SynthSpec::sparse("obj-sp", 80, 300, 12, 17)
            .generate()
            .unwrap();
        let dd = sd.densified();
        for o in [
            Objective::Logistic { lambda: 0.1 },
            Objective::LeastSquares { lambda: 0.1 },
        ] {
            let w: Vec<f64> = (0..sd.cols())
                .map(|i| ((i % 7) as f64 - 3.0) * 0.05)
                .collect();
            let sparse_blocks = sd.partition(3);
            let dense_blocks = dd.partition(3);
            for (sb, db) in sparse_blocks.iter().zip(&dense_blocks) {
                let rows: Vec<u32> = (0..sb.rows() as u32).step_by(2).collect();
                let gs = o.minibatch_grad_delta(sb, &rows, &w);
                let gd = o.minibatch_grad_delta(db, &rows, &w);
                assert!(gs.is_sparse() && !gd.is_sparse());
                let (a, b) = (gs.to_dense(), gd.to_dense());
                for (x, y) in a.iter().zip(&b) {
                    assert!((x - y).abs() < 1e-12, "{x} vs {y}");
                }
            }
        }
    }

    #[test]
    fn empty_batch_gives_zero_delta() {
        let (sd, _) = SynthSpec::sparse("obj-sp0", 10, 50, 4, 3)
            .generate()
            .unwrap();
        let b = &sd.partition(1)[0];
        let o = Objective::Logistic { lambda: 0.0 };
        let g = o.minibatch_grad_delta(b, &[], &vec![0.0; 50]);
        assert_eq!(g.nnz(), 0);
        assert_eq!(g.dim(), 50);
    }

    #[test]
    fn gradient_descends_the_full_objective() {
        let d = dataset();
        for o in [
            Objective::LeastSquares { lambda: 0.1 },
            Objective::Logistic { lambda: 0.1 },
        ] {
            let cfg = ParallelismCfg::sequential();
            let mut w = vec![0.0; d.cols()];
            let f0 = o.full_objective(cfg, &d, &w);
            let mut g = vec![0.0; d.cols()];
            for _ in 0..50 {
                o.full_grad(cfg, &d, &w, &mut g);
                dense::axpy(o.lambda(), &w, &mut g);
                dense::axpy(-0.05, &g, &mut w);
            }
            let f1 = o.full_objective(cfg, &d, &w);
            assert!(f1 < f0, "{o:?}: {f1} !< {f0}");
        }
    }

    #[test]
    fn cgls_optimum_lower_bounds_descent() {
        let d = dataset();
        let o = Objective::LeastSquares { lambda: 0.2 };
        let best = o.optimum(ParallelismCfg::sequential(), &d).unwrap();
        let at_zero = o.full_objective(ParallelismCfg::sequential(), &d, &vec![0.0; d.cols()]);
        assert!(best <= at_zero + 1e-9);
        assert!(Objective::Logistic { lambda: 0.1 }
            .optimum(ParallelismCfg::sequential(), &d)
            .is_none());
    }
}
