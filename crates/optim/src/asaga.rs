//! Asynchronous SAGA with history broadcast — the paper's Listing 4 /
//! Algorithm 4, the workload that motivates the `ASYNCbroadcaster`.
//!
//! SAGA's update needs, for every sampled row `j`, the gradient of `fⱼ` at
//! the model `φⱼ` as it was when `j` was *last* sampled. Shipping the table
//! of past models with every task is the overhead the paper calls out;
//! instead:
//!
//! * the server keeps the model history in an [`async_core::AsyncBcast`]
//!   and ships only **version IDs** (8 bytes per sample) with each task;
//! * the task resolves `w_current` and each `w_{φⱼ}` through its worker's
//!   local cache, fetching misses once;
//! * on consumption the server records the batch at the task's version
//!   (`record_use` — SAGA's "update table" step), which also drives
//!   reference-count pruning of history no sample can need again;
//! * versions with in-flight tasks are pinned from submission to
//!   consumption (with lost tasks' pins released at run end), so on the
//!   deterministic simulated engine — where task closures execute at
//!   submission, i.e. when the server attaches the version IDs — pruning
//!   can never invalidate a running task. On the threaded engine a
//!   worker's historical reads race later `record_use` calls; ASAGA is
//!   specified against `SimEngine`.
//!
//! The running table average `ᾱ = (1/n) Σⱼ f'ⱼ(φⱼ)·xⱼ` lives server-side,
//! seeded with one full-gradient pass at `w₀` (consistent with every row's
//! implicit initial version 0), and updated incrementally from each task's
//! telescoping delta.

use async_cluster::ConvergenceTrace;
use async_core::{AsyncBcast, AsyncContext, SubmitOpts, Tagged};
use async_data::sampler;
use async_data::{Block, Dataset};
use async_linalg::{GradDelta, Matrix};
use sparklet::{Payload, Rdd, WorkerCtx};

use crate::absorber::ShardedAbsorber;
use crate::checkpoint::{Checkpoint, SolverHistory};
use crate::compression::{CompressCfg, CompressorBank};
use crate::durable::{DurableSession, DurableStats};
use crate::objective::Objective;
use crate::scratch::ScratchPool;
use crate::serving::{PublishedModel, ServeCounters};
use crate::solver::{
    begin_supervised, block_rdd, crossed_multiple, stalled_should_wait, wave_admitted, AsyncSolver,
    PinLedger, RunReport, SolverCfg,
};

/// One task's SAGA contribution. Crate-visible so the remote wire codec
/// ([`crate::remote`]) can decode worker responses into the same message
/// type the in-process closures return.
pub(crate) struct DeltaMsg {
    /// `(1/b) Σⱼ (f'ⱼ(w_cur) − f'ⱼ(w_{φⱼ}))·xⱼ` over the batch, sparse
    /// over CSR partitions (the telescoping difference has the batch's
    /// support, so it ships and applies without densifying). With
    /// compression on this is the dequantized top-k selection.
    pub(crate) delta: GradDelta,
    /// Global row ids of the batch (for the server's table update) —
    /// never compressed: the table must record every sampled row.
    pub(crate) indices: Vec<u64>,
    /// Stored feature entries the two gradient evaluations touched.
    pub(crate) entries: u64,
    /// Modeled wire bytes of the delta: its own encoding when compression
    /// is off, the compressed frame size otherwise.
    pub(crate) wire_bytes: u64,
}

/// Asynchronous SAGA with server-side history.
#[derive(Debug, Clone)]
pub struct Asaga {
    /// The objective being minimized.
    pub objective: Objective,
    resume: Option<Checkpoint>,
    bank: Option<CompressorBank>,
}

impl Asaga {
    /// An ASAGA solver for `objective`.
    pub fn new(objective: Objective) -> Self {
        Self {
            objective,
            resume: None,
            bank: None,
        }
    }

    /// Injects the [`CompressorBank`] the next run's tasks compress
    /// through (only consulted when [`crate::SolverCfg::compress`] is on);
    /// by default each run builds its own.
    pub fn with_compressor_bank(mut self, bank: CompressorBank) -> Self {
        self.bank = Some(bank);
        self
    }

    /// Seeds the next [`AsyncSolver::run`] from a checkpoint. The server
    /// model restores bit-identically; the SAGA table is *re-based* at the
    /// restored model — every sample's `φⱼ` becomes `w`, and ᾱ is
    /// recomputed as the full gradient at `w`, which is exactly consistent
    /// with that table (see the crate's checkpoint docs for why the
    /// pre-crash running ᾱ cannot be reused).
    ///
    /// Validated against the dataset at `run` time, which panics on a
    /// solver/dimension/history mismatch.
    pub fn resume_from(mut self, ckpt: Checkpoint) -> Self {
        self.resume = Some(ckpt);
        self
    }

    #[allow(clippy::too_many_arguments)]
    fn submit_wave(
        &self,
        ctx: &mut AsyncContext,
        rdd: &Rdd<Block>,
        bcast: &AsyncBcast<Vec<f64>>,
        cfg: &SolverCfg,
        minibatch_hint: u64,
        pool: &ScratchPool,
        bank: &CompressorBank,
    ) -> Vec<usize> {
        let handle = bcast.handle();
        let server_table = bcast.clone();
        let version = ctx.version();
        let obj = self.objective;
        let (seed, fraction) = (cfg.seed, cfg.batch_fraction);
        let compress = cfg.compress;
        let pool = pool.clone();
        let bank = bank.clone();
        let task = move |wctx: &mut WorkerCtx, data: Vec<Block>, part: usize| {
            let block = &data[0];
            let w_cur = handle.value(wctx);
            let mut scratch = pool.checkout();
            let mut rng = sampler::derive_rng(seed, version, part as u64);
            sampler::sample_fraction_into(&mut rng, block.rows(), fraction, &mut scratch.rows);
            let scale = 1.0 / scratch.rows.len().max(1) as f64;
            let labels = block.labels();
            let features = block.features();
            // Per-row telescoping coefficients `scale·(f'ⱼ(w_cur) −
            // f'ⱼ(w_{φⱼ}))`; the combination is gathered sparsely on CSR
            // partitions and scattered densely otherwise. The id and
            // coefficient buffers come from the pool; `ids` travels with
            // the result and is recycled server-side after the table
            // update.
            scratch.ids.clear();
            scratch.coefs.clear();
            for &r in &scratch.rows {
                let i = r as usize;
                let j = block.global_row(i);
                // The ID of the model version row j last saw — attached by
                // the server at submission (the simulated engine runs this
                // closure at exactly that instant).
                let vj = server_table.version_for_index(j);
                let w_old = handle.value_at(wctx, vj);
                let d_new = obj.dloss(features.row_dot(i, &w_cur), labels[i]);
                let d_old = obj.dloss(features.row_dot(i, &w_old), labels[i]);
                scratch.coefs.push(scale * (d_new - d_old));
                scratch.ids.push(j);
            }
            let delta = match features {
                Matrix::Sparse(csr) => {
                    let (mut idx, mut val) = pool.checkout_sparse();
                    csr.gather_axpy_into(
                        &scratch.rows,
                        &scratch.coefs,
                        &mut scratch.pairs,
                        &mut idx,
                        &mut val,
                    );
                    GradDelta::Sparse(
                        async_linalg::SparseVec::new(idx, val, block.cols())
                            .expect("gather kernel produces valid sparse output"),
                    )
                }
                Matrix::Dense(_) => {
                    let mut d = pool.checkout_dense(block.cols());
                    for (&r, &a) in scratch.rows.iter().zip(scratch.coefs.iter()) {
                        features.row_axpy(r as usize, a, &mut d);
                    }
                    GradDelta::Dense(d)
                }
            };
            // Two gradient evaluations per sampled row.
            let entries = 2 * features.rows_nnz(&scratch.rows);
            let indices = std::mem::take(&mut scratch.ids);
            pool.give_back(scratch);
            // The telescoping difference compresses like any other delta;
            // the table-update row ids always travel exact.
            let (delta, wire_bytes) = match compress {
                CompressCfg::Off => {
                    let wire = delta.encoded_len();
                    (delta, wire)
                }
                CompressCfg::TopK { k, quant } => bank.compress(part, delta, k, quant, &pool),
            };
            DeltaMsg {
                delta,
                indices,
                entries,
                wire_bytes,
            }
        };
        let opts = SubmitOpts {
            // One version ID per sample plus the current model's ID.
            extra_bytes: AsyncBcast::<Vec<f64>>::id_ship_bytes(minibatch_hint as usize),
            // Two gradient evaluations per sampled row.
            cost_scale: 4.0 * fraction,
            minibatch: minibatch_hint,
            ..SubmitOpts::default()
        };
        // The wire form for the remote backend: sampling and version
        // lookup run driver-side in `build` (the submission instant — the
        // same moment the simulator runs the closure above), and the
        // worker replays the arithmetic. In-process engines ignore it.
        let routine =
            crate::remote::asaga_routine(rdd, bcast, obj, seed, version, fraction, compress);
        let submitted = ctx.async_reduce_wired(rdd, &cfg.barrier, opts, task, Some(&routine));
        // Pin the submission version once per in-flight task: `record_use`
        // at consumption must find it alive.
        for _ in &submitted {
            bcast.pin(version);
        }
        submitted
    }
}

impl AsyncSolver for Asaga {
    fn name(&self) -> &'static str {
        "asaga"
    }

    fn run(&mut self, ctx: &mut AsyncContext, dataset: &Dataset, cfg: &SolverCfg) -> RunReport {
        assert_eq!(ctx.pending(), 0, "asaga: context has in-flight tasks");
        let (lost0, retried0) = begin_supervised(ctx, cfg);
        let (blocks, rdd) = block_rdd(ctx, dataset, cfg);
        let dcols = dataset.cols();
        let n = dataset.rows();
        let mean_rows = n / blocks.len().max(1);
        let minibatch_hint = ((mean_rows as f64 * cfg.batch_fraction).ceil() as u64).max(1);

        // Durability: open the store when configured; an explicit
        // `resume_from` takes precedence over the store's newest valid
        // generation, and a durable auto-resume completes the crashed
        // run's lineage budget instead of adding a fresh one.
        let mut durable = cfg.durable_dir.as_deref().map(|dir| {
            DurableSession::open(dir).expect("asaga: cannot open durable checkpoint store")
        });
        let explicit = self.resume.take();
        let from_store = explicit.is_none();
        let resume = explicit.or_else(|| durable.as_mut().and_then(DurableSession::take_resume));

        // Resume from a checkpoint when one is installed: the model
        // restores bit-identically and the SAGA table re-bases at it —
        // the broadcast below seats the restored w as its base version, so
        // every sample's implicit φⱼ is the restored model, and the
        // full-gradient seeding of ᾱ right after is exactly consistent.
        let (mut w, base_updates, resumed) = match resume {
            Some(ckpt) => {
                ckpt.validate_for("asaga", dcols)
                    .expect("asaga: incompatible resume checkpoint");
                assert!(
                    matches!(ckpt.history, SolverHistory::Saga { .. }),
                    "asaga: checkpoint lacks a SAGA history"
                );
                for warning in cfg.lint_resume(&ckpt) {
                    eprintln!("asaga resume: {warning}");
                }
                // Re-seat the version counter so task RNG streams (keyed
                // on seed, version, part) continue the crashed run's
                // numbering.
                ctx.reseat_version(ckpt.version);
                (ckpt.w, ckpt.updates, Some((ckpt.version, ckpt.residuals)))
            }
            None => (vec![0.0; dcols], 0, None),
        };
        let budget = if from_store && resumed.is_some() {
            cfg.max_updates.saturating_sub(base_updates)
        } else {
            cfg.max_updates
        };
        // Every row's implicit initial version is the broadcast base: w₀
        // on a cold start, the re-based restored model on resume.
        let bcast = match &resumed {
            Some((version, _)) => ctx.async_broadcast_at(w.clone(), n as u64, *version),
            None => ctx.async_broadcast(w.clone(), n as u64),
        };
        // Steady-state buffer recycling for the delta/ids result cycle.
        let pool = ScratchPool::new();
        let bank = self.bank.take().unwrap_or_default();
        // A resumed run reloads the crashed run's error-feedback residuals
        // so compression continues instead of restarting cold.
        if let Some((_, Some(residuals))) = &resumed {
            bank.restore_residuals(residuals);
        }
        // A bank reused across runs keeps only this run's partitions.
        bank.retain_parts_below(blocks.len().max(1));
        if let Some(feed) = cfg.serve_feed.as_ref() {
            feed.publish(PublishedModel {
                bcast: bcast.clone(),
                objective: self.objective,
                dim: dcols,
            });
        }
        // ᾱ = mean table gradient, seeded at w₀ so it is exactly consistent
        // with the version table.
        let mut alpha_bar = vec![0.0; dcols];
        self.objective
            .full_grad(cfg.eval_threads, dataset, &w, &mut alpha_bar);

        let mut trace = ConvergenceTrace::new();
        let f0 = self.objective.full_objective(cfg.eval_threads, dataset, &w);
        trace.push(ctx.now(), f0 - cfg.baseline);

        // The versions each worker's in-flight tasks pinned. Entries are
        // cleared on consumption; whatever remains at run end (tasks lost
        // to worker failure never come back) is unpinned explicitly so no
        // model version leaks past the run.
        let mut pinned = PinLedger::new(ctx.workers());
        let mut checkpoints = Vec::new();

        let v0 = ctx.version();
        let ws = self.submit_wave(ctx, &rdd, &bcast, cfg, minibatch_hint, &pool, &bank);
        pinned.record_wave(v0, &ws);

        // The sharded server: both the model step and the ᾱ table-mean
        // re-base run shard-parallel; batched waves apply the deltas
        // sequentially within each shard (each estimator step must see the
        // ᾱ left by the previous table update — the ordering that keeps
        // SAGA unbiased).
        let mut server = ShardedAbsorber::new(dcols, cfg.server_threads);
        let absorb_batch = cfg.absorb_batch.max(1);
        let mut wave: Vec<Tagged<DeltaMsg>> = Vec::new();
        let mut damps: Vec<f64> = Vec::new();
        let mut scales: Vec<f64> = Vec::new();

        let mut updates = 0u64;
        let mut tasks_completed = 0u64;
        let mut max_staleness = 0u64;
        let mut grad_entries = 0u64;
        let mut result_bytes = 0u64;
        let mut wall_clock = ctx.now();
        let lambda = self.objective.lambda();
        while updates < budget {
            // Degrade-policy gate: see `SolverCfg::degrade`.
            if !wave_admitted(ctx) {
                break;
            }
            let want = absorb_batch.min((budget - updates) as usize);
            crate::solver::collect_wave(ctx, want, &mut wave);
            if wave.is_empty() {
                // Total stall (all in-flight tasks lost): restart with a
                // fresh wave if revived/joined workers are available, or
                // wait toward a scheduled recovery before giving up.
                let v = ctx.version();
                let ws = self.submit_wave(ctx, &rdd, &bcast, cfg, minibatch_hint, &pool, &bank);
                if ws.is_empty() {
                    if stalled_should_wait(ctx) {
                        continue;
                    }
                    break;
                }
                pinned.record_wave(v, &ws);
                continue;
            }
            damps.clear();
            scales.clear();
            for t in &wave {
                tasks_completed += 1;
                max_staleness = max_staleness.max(t.attrs.staleness);
                grad_entries += t.value.entries;
                result_bytes += t.value.wire_bytes;
                let task_version = t.attrs.issued_version;
                // SAGA's table update: the batch is now recorded at the
                // version the task computed against; then release the
                // in-flight pin.
                bcast.record_use(&t.value.indices, task_version);
                bcast.unpin(task_version);
                pinned.consume(t.attrs.worker, task_version);
                damps.push(if cfg.staleness_damping {
                    1.0 / (1.0 + t.attrs.staleness as f64)
                } else {
                    1.0
                });
                scales.push(t.value.indices.len() as f64 / n.max(1) as f64);
            }
            // SAGA's estimator uses ᾱ *before* each delta's own table
            // absorption: E[f'ⱼ(φⱼ)] over the pre-update table equals
            // ᾱ_old, which is what keeps g unbiased — the absorber
            // preserves that step/absorb interleaving per delta, sharded
            // (bit-identical to the serial order for any thread count).
            if wave.len() == 1 {
                server.asaga_step(
                    &mut w,
                    &mut alpha_bar,
                    &wave[0].value.delta,
                    cfg.step * damps[0],
                    lambda,
                    scales[0],
                );
            } else {
                let nw = wave.len();
                let deltas = &wave;
                server.asaga_wave(
                    &mut w,
                    &mut alpha_bar,
                    nw,
                    |k| &deltas[k].value.delta,
                    &damps,
                    cfg.step,
                    lambda,
                    &scales,
                );
            }
            for t in wave.drain(..) {
                pool.recycle_ids(t.value.indices);
                pool.recycle_delta(t.value.delta);
            }
            let prev_updates = updates;
            updates += damps.len() as u64;
            // One model version and one snapshot push per wave (the
            // historical per-delta cadence when absorb_batch = 1).
            ctx.advance_version();
            bcast.push_snapshot_sharded(&w, None, server.pool());
            wall_clock = ctx.now();
            if cfg.eval_every > 0 && crossed_multiple(prev_updates, updates, cfg.eval_every) {
                let f = self.objective.full_objective(cfg.eval_threads, dataset, &w);
                trace.push(wall_clock, f - cfg.baseline);
            }
            if cfg.checkpoint_every > 0
                && crossed_multiple(prev_updates, updates, cfg.checkpoint_every)
            {
                let lineage = base_updates + updates;
                let version = ctx.version();
                checkpoints.push(Checkpoint {
                    solver: "asaga".to_string(),
                    updates: lineage,
                    version,
                    w: w.clone(),
                    history: SolverHistory::Saga {
                        alpha_bar: alpha_bar.clone(),
                    },
                    residuals: Some(bank.export_residuals()),
                });
                if let Some(session) = durable.as_mut() {
                    // The just-pushed snapshot rides to the background
                    // writer as a read pin; ᾱ clones like the in-memory
                    // checkpoint already does.
                    if let Some(pin) = bcast.try_pin_read_at(version) {
                        session.submit(
                            lineage,
                            "asaga",
                            lineage,
                            version,
                            pin,
                            SolverHistory::Saga {
                                alpha_bar: alpha_bar.clone(),
                            },
                            bank.export_residuals(),
                        );
                    }
                }
            }
            let v = ctx.version();
            let ws = self.submit_wave(ctx, &rdd, &bcast, cfg, minibatch_hint, &pool, &bank);
            pinned.record_wave(v, &ws);
        }

        let final_objective = self.objective.full_objective(cfg.eval_threads, dataset, &w);
        trace.push(wall_clock, final_objective - cfg.baseline);

        // Final durable save (deduplicated when the run ended exactly on a
        // cadence boundary), then drain the writer before reporting.
        let durable_stats = match durable {
            Some(mut session) => {
                let lineage = base_updates + updates;
                if let Some(pin) = bcast.try_pin_read_at(ctx.version()) {
                    session.submit(
                        lineage,
                        "asaga",
                        lineage,
                        ctx.version(),
                        pin,
                        SolverHistory::Saga {
                            alpha_bar: alpha_bar.clone(),
                        },
                        bank.export_residuals(),
                    );
                }
                session.finish()
            }
            None => DurableStats::default(),
        };

        // Drain in-flight tasks, releasing their pins without applying.
        while let Some(t) = ctx.collect::<DeltaMsg>() {
            bcast.unpin(t.attrs.issued_version);
            pinned.consume(t.attrs.worker, t.attrs.issued_version);
            pool.recycle_ids(t.value.indices);
            pool.recycle_delta(t.value.delta);
        }
        // Tasks lost to worker failures never surface: release their pins
        // so the model versions they held can prune.
        pinned.release_leftovers(&bcast);

        let serve = match cfg.serve_feed.as_ref() {
            Some(feed) => {
                feed.mark_done();
                feed.counters()
            }
            None => ServeCounters::default(),
        };

        RunReport {
            trace,
            updates,
            tasks_completed,
            max_staleness,
            wall_clock,
            mean_wait: ctx.driver().wait_recorder().overall_mean(),
            bytes_shipped: ctx.driver().total_bytes_shipped(),
            grad_entries,
            result_bytes,
            worker_clocks: ctx.stat().workers.iter().map(|s| s.clock).collect(),
            final_w: w,
            final_objective,
            checkpoints,
            serve,
            lost_tasks: ctx.lost_tasks() - lost0,
            retried_tasks: ctx.retried_tasks() - retried0,
            durable: durable_stats,
        }
    }
}
