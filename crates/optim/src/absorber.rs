//! The [`ShardedAbsorber`]: shard-parallel, optionally batched server-side
//! absorption of gradient deltas.
//!
//! The coordinator is the engine's serialization point: every collected
//! delta is folded into the model by the driver thread, one dense pass at
//! a time, so once the workers are fast the *server* becomes the
//! throughput wall. The absorber cures that along two independent axes:
//!
//! * **Sharding** (`server_threads`): the model is partitioned into
//!   contiguous coordinate shards ([`async_linalg::parallel::split_ranges`])
//!   and every apply pass runs shard-parallel on a persistent
//!   [`ShardPool`] — no per-call thread spawns. Because the shards are
//!   disjoint and each coordinate sees exactly the serial sequence of f64
//!   operations, a sharded apply is **bit-identical** to the serial apply
//!   for any thread count.
//! * **Batching** (`absorb_batch`): a wave of collected deltas is folded
//!   first — per shard, through the existing [`DeltaFold`] accumulators —
//!   and applied with **one** fused axpy+ridge-shrink pass per shard,
//!   instead of one full pass per delta. Folding reorders the f64
//!   arithmetic (the fused coefficients are exact in ℝ, not in f64), so
//!   batched waves are *value-equivalent, not bit-identical*, to applying
//!   the same deltas one at a time; the byte-gated benches therefore pin
//!   `absorb_batch = 1`.
//!
//! Ownership rules: the absorber owns the shard pool, one fold
//! accumulator per shard, and the wave-coefficient/support buffers for its
//! whole life — a steady-state wave performs **zero heap allocations**
//! (proven by the batched arm of `tests/alloc_zero.rs`). Model vectors are
//! borrowed per call and carved into disjoint shard views via
//! [`DisjointSlices`]; the wave closures never touch coordinates outside
//! their shard.

use std::ops::Range;

use async_linalg::parallel::split_ranges;
use async_linalg::{dense, DeltaFold, DisjointSlices, GradDelta, ShardPool};

/// One shard's state: its coordinate range and its reusable fold
/// accumulator (dimensioned to the range, with shard-local indices).
struct Shard {
    range: Range<usize>,
    fold: DeltaFold,
}

/// Shard-parallel server absorption. See the module docs.
pub struct ShardedAbsorber {
    pool: ShardPool,
    shards: Vec<Shard>,
    /// Fused per-delta coefficients of the current wave.
    coefs: Vec<f64>,
    /// Global change support of the last sparse wave (concatenated shard
    /// supports, ascending).
    support: Vec<u32>,
    dim: usize,
}

impl ShardedAbsorber {
    /// An absorber over models of dimension `dim`, applying with
    /// `server_threads` pool participants (clamped to at least 1; one
    /// shard per participant). With one thread every pass runs inline on
    /// the caller — the serial code path.
    pub fn new(dim: usize, server_threads: usize) -> Self {
        let threads = server_threads.max(1);
        let shards = split_ranges(dim, threads)
            .into_iter()
            .map(|range| Shard {
                fold: DeltaFold::new(range.len()),
                range,
            })
            .collect();
        Self {
            pool: ShardPool::new(threads),
            shards,
            coefs: Vec::new(),
            support: Vec::new(),
            dim,
        }
    }

    /// Model dimension the absorber shards.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of coordinate shards (≤ the requested thread count; empty
    /// ranges are dropped for tiny models).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The persistent shard pool (also used for shard-parallel broadcast
    /// snapshot pushes).
    pub fn pool(&self) -> &ShardPool {
        &self.pool
    }

    /// Global change support of the last [`ShardedAbsorber::asgd_wave`]
    /// that returned `true` (ascending coordinate indices).
    pub fn wave_support(&self) -> &[u32] {
        &self.support
    }

    /// One exact ASGD update, shard-parallel: `w ← w − a·(g + λ·w)` with
    /// `a = γ·damp`. The per-coordinate expressions are exactly the serial
    /// solver's (dense arm: the fused three-term update; sparse arm: ridge
    /// shrink — skipped when it is an exact no-op — then a support-only
    /// scatter), so the result is bit-identical to the serial apply for
    /// any thread count. Returns `true` when the update's change support
    /// is exactly `g`'s sparse support (λ = 0 sparse arm), the
    /// precondition for an incremental-broadcast diff push.
    ///
    /// # Panics
    /// Panics if `w.len()` or `g.dim()` differ from the absorber's
    /// dimension.
    pub fn asgd_step(&mut self, w: &mut [f64], g: &GradDelta, a: f64, lambda: f64) -> bool {
        self.check_dims(w.len(), g.dim());
        let view = DisjointSlices::new(w);
        match g {
            GradDelta::Dense(gv) => {
                self.pool.for_each(&mut self.shards, |_, sh| {
                    // SAFETY: shard ranges are disjoint by construction.
                    let chunk = unsafe { view.range(sh.range.clone()) };
                    for (wi, gi) in chunk.iter_mut().zip(&gv[sh.range.clone()]) {
                        *wi -= a * (*gi + lambda * *wi);
                    }
                });
                false
            }
            GradDelta::Sparse(_) => {
                let shrink = a * lambda;
                self.pool.for_each(&mut self.shards, |_, sh| {
                    // SAFETY: shard ranges are disjoint by construction.
                    let chunk = unsafe { view.range(sh.range.clone()) };
                    if shrink != 0.0 {
                        for wi in chunk.iter_mut() {
                            *wi -= shrink * *wi;
                        }
                    }
                    g.axpy_into_range(-a, chunk, sh.range.start);
                });
                shrink == 0.0
            }
        }
    }

    /// One fused ASGD wave: folds deltas `0..n` (looked up through
    /// `delta`) per shard with the exact fused coefficients of the serial
    /// recurrence `w ← (1 − γ·dₖ·λ)·w − γ·dₖ·gₖ`, then applies one
    /// shrink+axpy pass per shard:
    ///
    /// ```text
    /// w ← S·w − Σₖ cₖ·gₖ,   S = Πₖ sₖ,  sₖ = 1 − γ·dₖ·λ,  cₖ = γ·dₖ·Πⱼ₍ⱼ₎₌ₖ₊₁ sⱼ
    /// ```
    ///
    /// which equals the delta-at-a-time application in exact arithmetic —
    /// the f64 reordering is why batched waves are value-equivalent, not
    /// bit-identical. All-sparse waves fold through the per-shard
    /// [`DeltaFold`] accumulators (one scatter per shard); a wave with any
    /// dense delta applies the fused coefficients delta-sequentially per
    /// shard. Returns `true` when the wave's change support is exactly the
    /// folded sparse support (λ = 0, all deltas sparse), available from
    /// [`ShardedAbsorber::wave_support`].
    ///
    /// # Panics
    /// Panics on a dimension mismatch or when `damps.len() != n`.
    pub fn asgd_wave<'d>(
        &mut self,
        w: &mut [f64],
        n: usize,
        delta: impl Fn(usize) -> &'d GradDelta + Sync,
        damps: &[f64],
        step: f64,
        lambda: f64,
    ) -> bool {
        assert_eq!(damps.len(), n, "asgd_wave: damps/delta count mismatch");
        self.check_wave_dims(w.len(), n, &delta);
        // Fused coefficients: cₖ carries the shrink factors of every
        // *later* delta; S is the total shrink.
        self.coefs.clear();
        self.coefs.resize(n, 0.0);
        let mut total_shrink = 1.0;
        for k in (0..n).rev() {
            self.coefs[k] = step * damps[k] * total_shrink;
            total_shrink *= 1.0 - step * damps[k] * lambda;
        }
        let all_sparse = (0..n).all(|k| delta(k).is_sparse());
        let view = DisjointSlices::new(w);
        let coefs = &self.coefs;
        if all_sparse {
            self.pool.for_each(&mut self.shards, |_, sh| {
                // SAFETY: shard ranges are disjoint by construction.
                let chunk = unsafe { view.range(sh.range.clone()) };
                sh.fold.clear(sh.range.len());
                for (k, c) in coefs.iter().enumerate() {
                    sh.fold.fold_scaled_range(*c, delta(k), sh.range.clone());
                }
                if total_shrink != 1.0 {
                    dense::scal(total_shrink, chunk);
                }
                sh.fold.axpy_into(-1.0, chunk);
            });
        } else {
            self.pool.for_each(&mut self.shards, |_, sh| {
                // SAFETY: shard ranges are disjoint by construction.
                let chunk = unsafe { view.range(sh.range.clone()) };
                if total_shrink != 1.0 {
                    dense::scal(total_shrink, chunk);
                }
                for (k, c) in coefs.iter().enumerate() {
                    delta(k).axpy_into_range(-c, chunk, sh.range.start);
                }
            });
        }
        let sparse_support = all_sparse && lambda == 0.0;
        if sparse_support {
            self.support.clear();
            for sh in &self.shards {
                self.support
                    .extend(sh.fold.indices().iter().map(|i| i + sh.range.start as u32));
            }
        }
        sparse_support
    }

    /// One exact staleness-damped momentum update, shard-parallel:
    /// `u ← β·u + g + λ·w; w ← w − γ·u` with the serial solver's exact
    /// per-coordinate expressions (dense arm fused, sparse arm as decay +
    /// support scatter + step). Bit-identical to the serial apply.
    ///
    /// # Panics
    /// Panics on a dimension mismatch.
    pub fn msgd_step(
        &mut self,
        w: &mut [f64],
        u: &mut [f64],
        g: &GradDelta,
        beta: f64,
        gamma: f64,
        lambda: f64,
    ) {
        self.check_dims(w.len(), g.dim());
        assert_eq!(u.len(), self.dim, "msgd_step: velocity dim mismatch");
        let wv = DisjointSlices::new(w);
        let uv = DisjointSlices::new(u);
        self.pool.for_each(&mut self.shards, |_, sh| {
            // SAFETY: shard ranges are disjoint by construction.
            let (wc, uc) = unsafe { (wv.range(sh.range.clone()), uv.range(sh.range.clone())) };
            msgd_apply_range(wc, uc, g, beta, gamma, lambda, sh.range.start);
        });
    }

    /// One momentum wave: the batch's updates applied delta-sequentially
    /// *within* each shard (momentum's velocity recurrence couples every
    /// coordinate to every delta, so there is no fold form — the wave's
    /// win is one shard dispatch and one snapshot push per batch). The
    /// per-coordinate recurrence is exactly the serial one, so a wave is
    /// bit-identical to applying its deltas one at a time with the same
    /// `(βₖ, γₖ)` sequence.
    ///
    /// # Panics
    /// Panics on a dimension mismatch or when `betas`/`gammas` don't have
    /// `n` entries.
    #[allow(clippy::too_many_arguments)]
    pub fn msgd_wave<'d>(
        &mut self,
        w: &mut [f64],
        u: &mut [f64],
        n: usize,
        delta: impl Fn(usize) -> &'d GradDelta + Sync,
        betas: &[f64],
        gammas: &[f64],
        lambda: f64,
    ) {
        assert_eq!(betas.len(), n, "msgd_wave: betas/delta count mismatch");
        assert_eq!(gammas.len(), n, "msgd_wave: gammas/delta count mismatch");
        self.check_wave_dims(w.len(), n, &delta);
        assert_eq!(u.len(), self.dim, "msgd_wave: velocity dim mismatch");
        let wv = DisjointSlices::new(w);
        let uv = DisjointSlices::new(u);
        self.pool.for_each(&mut self.shards, |_, sh| {
            // SAFETY: shard ranges are disjoint by construction.
            let (wc, uc) = unsafe { (wv.range(sh.range.clone()), uv.range(sh.range.clone())) };
            for k in 0..n {
                msgd_apply_range(
                    wc,
                    uc,
                    delta(k),
                    betas[k],
                    gammas[k],
                    lambda,
                    sh.range.start,
                );
            }
        });
    }

    /// One exact ASAGA update, shard-parallel: the SAGA estimator step
    /// `w ← w − a·(δ + ᾱ + λ·w)` (with `δ` scattered on its support in the
    /// sparse arm) followed by the table-mean absorption
    /// `ᾱ ← ᾱ + scale·δ`, in the serial solver's exact per-coordinate
    /// order — bit-identical to the serial apply. `a = γ·damp`; `scale` is
    /// the batch fraction `b/n` of the telescoping delta.
    ///
    /// # Panics
    /// Panics on a dimension mismatch.
    pub fn asaga_step(
        &mut self,
        w: &mut [f64],
        alpha_bar: &mut [f64],
        delta: &GradDelta,
        a: f64,
        lambda: f64,
        scale: f64,
    ) {
        self.check_dims(w.len(), delta.dim());
        assert_eq!(alpha_bar.len(), self.dim, "asaga_step: ᾱ dim mismatch");
        let wv = DisjointSlices::new(w);
        let av = DisjointSlices::new(alpha_bar);
        self.pool.for_each(&mut self.shards, |_, sh| {
            // SAFETY: shard ranges are disjoint by construction.
            let (wc, ac) = unsafe { (wv.range(sh.range.clone()), av.range(sh.range.clone())) };
            asaga_apply_range(wc, ac, delta, a, lambda, scale, sh.range.start);
        });
    }

    /// One ASAGA wave: the batch's updates applied delta-sequentially
    /// within each shard (each estimator step must read the ᾱ produced by
    /// the previous table update — that ordering is what keeps SAGA
    /// unbiased, so it is preserved inside the wave). Bit-identical to
    /// applying the deltas one at a time with the same coefficient
    /// sequences; the wave's win is one dispatch and one snapshot push.
    ///
    /// # Panics
    /// Panics on a dimension mismatch or when `damps`/`scales` don't have
    /// `n` entries.
    #[allow(clippy::too_many_arguments)]
    pub fn asaga_wave<'d>(
        &mut self,
        w: &mut [f64],
        alpha_bar: &mut [f64],
        n: usize,
        delta: impl Fn(usize) -> &'d GradDelta + Sync,
        damps: &[f64],
        step: f64,
        lambda: f64,
        scales: &[f64],
    ) {
        assert_eq!(damps.len(), n, "asaga_wave: damps/delta count mismatch");
        assert_eq!(scales.len(), n, "asaga_wave: scales/delta count mismatch");
        self.check_wave_dims(w.len(), n, &delta);
        assert_eq!(alpha_bar.len(), self.dim, "asaga_wave: ᾱ dim mismatch");
        let wv = DisjointSlices::new(w);
        let av = DisjointSlices::new(alpha_bar);
        self.pool.for_each(&mut self.shards, |_, sh| {
            // SAFETY: shard ranges are disjoint by construction.
            let (wc, ac) = unsafe { (wv.range(sh.range.clone()), av.range(sh.range.clone())) };
            for k in 0..n {
                asaga_apply_range(
                    wc,
                    ac,
                    delta(k),
                    step * damps[k],
                    lambda,
                    scales[k],
                    sh.range.start,
                );
            }
        });
    }

    /// Validates every delta of a wave (not just the first), upholding
    /// the wave methods' panic-on-dimension-mismatch contract.
    fn check_wave_dims<'d>(&self, w_len: usize, n: usize, delta: &impl Fn(usize) -> &'d GradDelta) {
        assert_eq!(w_len, self.dim, "absorber: model dim mismatch");
        for k in 0..n {
            assert_eq!(delta(k).dim(), self.dim, "absorber: delta {k} dim mismatch");
        }
    }

    fn check_dims(&self, w_len: usize, delta_dim: usize) {
        assert_eq!(w_len, self.dim, "absorber: model dim mismatch");
        assert_eq!(delta_dim, self.dim, "absorber: delta dim mismatch");
    }
}

impl std::fmt::Debug for ShardedAbsorber {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedAbsorber")
            .field("dim", &self.dim)
            .field("shards", &self.shards.len())
            .finish()
    }
}

/// The serial momentum recurrence on one shard's coordinate window.
fn msgd_apply_range(
    wc: &mut [f64],
    uc: &mut [f64],
    g: &GradDelta,
    beta: f64,
    gamma: f64,
    lambda: f64,
    start: usize,
) {
    match g {
        GradDelta::Dense(gv) => {
            let gw = &gv[start..start + wc.len()];
            for i in 0..wc.len() {
                uc[i] = beta * uc[i] + gw[i] + lambda * wc[i];
                wc[i] -= gamma * uc[i];
            }
        }
        GradDelta::Sparse(_) => {
            for i in 0..wc.len() {
                uc[i] = beta * uc[i] + lambda * wc[i];
            }
            g.axpy_into_range(1.0, uc, start);
            for i in 0..wc.len() {
                wc[i] -= gamma * uc[i];
            }
        }
    }
}

/// The serial SAGA estimator step + table absorption on one shard's
/// coordinate window.
fn asaga_apply_range(
    wc: &mut [f64],
    ac: &mut [f64],
    delta: &GradDelta,
    a: f64,
    lambda: f64,
    scale: f64,
    start: usize,
) {
    match delta {
        GradDelta::Dense(dv) => {
            let dw = &dv[start..start + wc.len()];
            for i in 0..wc.len() {
                let g = dw[i] + ac[i] + lambda * wc[i];
                wc[i] -= a * g;
            }
        }
        GradDelta::Sparse(_) => {
            for i in 0..wc.len() {
                wc[i] -= a * (ac[i] + lambda * wc[i]);
            }
            delta.axpy_into_range(-a, wc, start);
        }
    }
    delta.axpy_into_range(scale, ac, start);
}

#[cfg(test)]
mod tests {
    use super::*;
    use async_linalg::SparseVec;

    fn sv(pairs: &[(u32, f64)], dim: usize) -> GradDelta {
        GradDelta::Sparse(SparseVec::from_pairs(pairs.to_vec(), dim).unwrap())
    }

    fn deltas(dim: usize) -> Vec<GradDelta> {
        vec![
            sv(&[(1, 2.0), (7, -1.0), (30, 0.5)], dim),
            GradDelta::Dense(
                (0..dim)
                    .map(|i| ((i * 13 % 7) as f64) * 0.1 - 0.3)
                    .collect(),
            ),
            sv(&[(0, -0.25), (7, 4.0), (31, 1.0)], dim),
        ]
    }

    /// The serial reference: exactly the historical solver expressions.
    fn asgd_serial(w: &mut [f64], g: &GradDelta, a: f64, lambda: f64) {
        match g {
            GradDelta::Dense(gv) => {
                for i in 0..w.len() {
                    w[i] -= a * (gv[i] + lambda * w[i]);
                }
            }
            GradDelta::Sparse(_) => {
                let shrink = a * lambda;
                if shrink != 0.0 {
                    for wi in w.iter_mut() {
                        *wi -= shrink * *wi;
                    }
                }
                g.axpy_into(-a, w);
            }
        }
    }

    #[test]
    fn asgd_step_is_bit_identical_across_thread_counts() {
        let dim = 97;
        for threads in [1usize, 2, 3, 8] {
            let mut ab = ShardedAbsorber::new(dim, threads);
            let mut w: Vec<f64> = (0..dim).map(|i| (i as f64).sin()).collect();
            let mut reference = w.clone();
            for (k, g) in deltas(dim).iter().enumerate() {
                let a = 0.1 + 0.05 * k as f64;
                let sparse = ab.asgd_step(&mut w, g, a, 1e-3);
                asgd_serial(&mut reference, g, a, 1e-3);
                assert!(!sparse, "λ>0 never declares a sparse support");
            }
            assert_eq!(w, reference, "threads={threads}");
        }
    }

    #[test]
    fn asgd_step_declares_sparse_support_only_without_ridge() {
        let dim = 32;
        let mut ab = ShardedAbsorber::new(dim, 2);
        let mut w = vec![0.5; dim];
        assert!(ab.asgd_step(&mut w, &sv(&[(3, 1.0)], dim), 0.1, 0.0));
        assert!(!ab.asgd_step(&mut w, &sv(&[(3, 1.0)], dim), 0.1, 0.01));
        assert!(!ab.asgd_step(&mut w, &GradDelta::Dense(vec![0.1; dim]), 0.1, 0.0));
    }

    #[test]
    fn asgd_wave_matches_sequential_within_1e9() {
        let dim = 64;
        for threads in [1usize, 4] {
            let mut ab = ShardedAbsorber::new(dim, threads);
            let ds = deltas(dim);
            let damps = [1.0, 0.5, 0.25];
            for lambda in [0.0, 1e-2] {
                let mut batched: Vec<f64> = (0..dim).map(|i| 0.01 * i as f64).collect();
                let mut sequential = batched.clone();
                ab.asgd_wave(&mut batched, ds.len(), |k| &ds[k], &damps, 0.2, lambda);
                for (k, g) in ds.iter().enumerate() {
                    asgd_serial(&mut sequential, g, 0.2 * damps[k], lambda);
                }
                for (b, s) in batched.iter().zip(&sequential) {
                    assert!(
                        (b - s).abs() <= 1e-9 * s.abs().max(1.0),
                        "λ={lambda}: {b} vs {s}"
                    );
                }
            }
        }
    }

    #[test]
    fn all_sparse_wave_reports_the_folded_support() {
        let dim = 40;
        let mut ab = ShardedAbsorber::new(dim, 3);
        let ds = [
            sv(&[(1, 1.0), (20, 2.0)], dim),
            sv(&[(5, -1.0), (20, 1.0)], dim),
        ];
        let mut w = vec![0.0; dim];
        let sparse = ab.asgd_wave(&mut w, 2, |k| &ds[k], &[1.0, 1.0], 0.1, 0.0);
        assert!(sparse);
        assert_eq!(ab.wave_support(), &[1, 5, 20]);
        // Untouched coordinates really are untouched.
        assert_eq!(w[0], 0.0);
        assert!((w[20] + 0.1 * 3.0).abs() < 1e-15);
    }

    #[test]
    fn msgd_step_and_wave_are_bit_identical_to_serial() {
        let dim = 53;
        let ds = deltas(dim);
        let betas = [0.9, 0.45, 0.3];
        let gammas = [0.1, 0.1, 0.05];
        // Serial reference via a 1-thread absorber (the serial expressions
        // themselves), stepped one delta at a time.
        let mut serial = ShardedAbsorber::new(dim, 1);
        let mut w_ref: Vec<f64> = (0..dim).map(|i| (i as f64) * 0.01).collect();
        let mut u_ref = vec![0.0; dim];
        for (k, g) in ds.iter().enumerate() {
            serial.msgd_step(&mut w_ref, &mut u_ref, g, betas[k], gammas[k], 1e-3);
        }
        for threads in [2usize, 5] {
            // Stepped, sharded.
            let mut ab = ShardedAbsorber::new(dim, threads);
            let mut w: Vec<f64> = (0..dim).map(|i| (i as f64) * 0.01).collect();
            let mut u = vec![0.0; dim];
            for (k, g) in ds.iter().enumerate() {
                ab.msgd_step(&mut w, &mut u, g, betas[k], gammas[k], 1e-3);
            }
            assert_eq!(w, w_ref, "stepped threads={threads}");
            assert_eq!(u, u_ref, "stepped threads={threads}");
            // One wave.
            let mut w = (0..dim).map(|i| (i as f64) * 0.01).collect::<Vec<_>>();
            let mut u = vec![0.0; dim];
            ab.msgd_wave(&mut w, &mut u, ds.len(), |k| &ds[k], &betas, &gammas, 1e-3);
            assert_eq!(w, w_ref, "wave threads={threads}");
            assert_eq!(u, u_ref, "wave threads={threads}");
        }
    }

    #[test]
    fn asaga_step_and_wave_are_bit_identical_to_serial() {
        let dim = 41;
        let ds = deltas(dim);
        let damps = [1.0, 0.5, 1.0];
        let scales = [0.05, 0.1, 0.05];
        let mut serial = ShardedAbsorber::new(dim, 1);
        let mut w_ref: Vec<f64> = (0..dim).map(|i| (i as f64).cos()).collect();
        let mut a_ref: Vec<f64> = (0..dim).map(|i| (i as f64) * 0.02 - 0.3).collect();
        for (k, d) in ds.iter().enumerate() {
            serial.asaga_step(&mut w_ref, &mut a_ref, d, 0.3 * damps[k], 1e-3, scales[k]);
        }
        for threads in [2usize, 7] {
            let mut ab = ShardedAbsorber::new(dim, threads);
            let mut w: Vec<f64> = (0..dim).map(|i| (i as f64).cos()).collect();
            let mut a: Vec<f64> = (0..dim).map(|i| (i as f64) * 0.02 - 0.3).collect();
            for (k, d) in ds.iter().enumerate() {
                ab.asaga_step(&mut w, &mut a, d, 0.3 * damps[k], 1e-3, scales[k]);
            }
            assert_eq!(w, w_ref, "stepped threads={threads}");
            assert_eq!(a, a_ref, "stepped threads={threads}");
            let mut w: Vec<f64> = (0..dim).map(|i| (i as f64).cos()).collect();
            let mut a: Vec<f64> = (0..dim).map(|i| (i as f64) * 0.02 - 0.3).collect();
            ab.asaga_wave(
                &mut w,
                &mut a,
                ds.len(),
                |k| &ds[k],
                &damps,
                0.3,
                1e-3,
                &scales,
            );
            assert_eq!(w, w_ref, "wave threads={threads}");
            assert_eq!(a, a_ref, "wave threads={threads}");
        }
    }

    #[test]
    fn tiny_models_drop_empty_shards() {
        let ab = ShardedAbsorber::new(3, 8);
        assert_eq!(ab.shards(), 3);
        assert_eq!(ab.dim(), 3);
    }
}
