//! Crash-consistent checkpoint durability: an atomic on-disk generation
//! store, a background checkpointer that snapshots solver state off the
//! hot path, and deterministic disk fault injection for the recovery
//! paths.
//!
//! PR 9's supervision layer made the *cluster* survive worker failures;
//! this module covers the other half of elasticity: the driver process
//! itself dying. With [`crate::SolverCfg::durable_dir`] set, a solver
//! writes each cadence checkpoint ([`crate::SolverCfg::checkpoint_every`])
//! to disk through a [`CheckpointStore`], and on its next start finds the
//! newest **valid** generation and resumes from it — model, solver
//! history, error-feedback residuals, model version, and update budget
//! included.
//!
//! # The atomic-rename protocol
//!
//! A generation `g` is two files, committed strictly in order:
//!
//! ```text
//! gen-000000000042.ckpt     the serialized Checkpoint payload
//! gen-000000000042.mf       32-byte manifest: magic, g, payload length,
//!                           FNV-1a 64 checksum of the payload
//! ```
//!
//! Each file is written to a temp name, `fsync`ed, and renamed into
//! place; the directory is `fsync`ed after the renames. The payload
//! commits *before* the manifest, so a crash between the two leaves a
//! payload without a manifest — an invalid generation by construction,
//! never a manifest describing bytes that are not there. A torn or
//! bit-rotted payload under a committed manifest is caught at read time
//! by the manifest's length and checksum; [`CheckpointStore::latest_valid`]
//! walks generations newest-first and returns the first one that checks
//! out.
//!
//! # Fault injection
//!
//! A seeded [`DiskFaultPlan`] mirrors PR 9's wire `FaultPlan`: it scripts,
//! per save attempt, a torn payload write, a failed fsync, a post-commit
//! corrupted byte, or a dropped manifest — so every recovery path is
//! exercised deterministically (`tests/durable_proptests.rs` drives the
//! store through arbitrary schedules and checks that `latest_valid` never
//! returns a corrupt generation and never loses the last durably
//! committed one).

use std::fs;
use std::io::{self, Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;

use async_core::ReadPin;

use crate::checkpoint::{Checkpoint, SolverHistory};

/// Magic prefix of a generation manifest.
const MANIFEST_MAGIC: &[u8; 8] = b"ASYNCMF1";
/// Manifest size on disk: magic + generation + payload length + checksum.
const MANIFEST_LEN: usize = 32;
/// Valid generations retained after a successful save (the newest valid
/// one is never deleted regardless).
const KEEP_GENERATIONS: usize = 4;

/// FNV-1a 64 over `bytes` — the manifest checksum.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One scripted disk misbehaviour, struck during a single save attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFault {
    /// The payload write tears: only a strict prefix of `keep_bytes`
    /// reaches the file, but the rename (and the manifest) still land —
    /// the "rename durability without data durability" failure mode.
    /// The save *reports success*; only the manifest length check can
    /// tell at recovery time.
    TornWrite {
        /// Bytes of the payload that survive (clamped to a strict prefix).
        keep_bytes: usize,
    },
    /// The payload fsync fails: nothing is committed and the save returns
    /// an error, as a real `fsync` failure would.
    FailFsync,
    /// Silent bit rot after a fully successful commit: the byte at
    /// `offset` (mod payload length) is XORed with `xor`. The save
    /// reports success; only the manifest checksum can tell.
    CorruptByte {
        /// Byte offset into the payload (wrapped to its length).
        offset: usize,
        /// XOR mask applied to that byte (0 is promoted to 1).
        xor: u8,
    },
    /// The process dies between the payload commit and the manifest
    /// commit: the payload renames into place, the manifest never
    /// appears, and the save returns an error.
    DropManifest,
}

/// A deterministic per-save-attempt schedule of [`DiskFault`]s, mirroring
/// the wire `FaultPlan` of the supervision layer: the nth save attempt of
/// a store consults slot `n` of the schedule. The default plan is empty
/// and injects nothing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DiskFaultPlan {
    /// Fault (or `None`) per save attempt; attempts beyond the schedule's
    /// length run clean.
    pub faults: Vec<Option<DiskFault>>,
}

impl DiskFaultPlan {
    /// A plan that injects nothing (the default).
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan striking exactly the listed `(attempt, fault)` pairs.
    pub fn scripted(entries: &[(usize, DiskFault)]) -> Self {
        let len = entries.iter().map(|&(i, _)| i + 1).max().unwrap_or(0);
        let mut faults = vec![None; len];
        for &(i, f) in entries {
            faults[i] = Some(f);
        }
        Self { faults }
    }

    /// A seeded random schedule over `attempts` save attempts: each slot
    /// independently draws a fault with probability ~1/2, uniformly over
    /// the four kinds. Deterministic in `seed` alone.
    pub fn random(seed: u64, attempts: usize) -> Self {
        let mut state = splitmix(seed ^ 0xD15C_FA17_0000_0001);
        let mut faults = Vec::with_capacity(attempts);
        for _ in 0..attempts {
            state = splitmix(state);
            let fault = match state % 8 {
                0 => Some(DiskFault::TornWrite {
                    keep_bytes: (splitmix(state) % 4096) as usize,
                }),
                1 => Some(DiskFault::FailFsync),
                2 => Some(DiskFault::CorruptByte {
                    offset: (splitmix(state) % 4096) as usize,
                    xor: (splitmix(state ^ 1) % 256) as u8,
                }),
                3 => Some(DiskFault::DropManifest),
                _ => None,
            };
            faults.push(fault);
        }
        Self { faults }
    }

    /// True when this plan can never inject a fault.
    pub fn is_zero(&self) -> bool {
        self.faults.iter().all(Option::is_none)
    }

    fn fault_for(&self, attempt: u64) -> Option<DiskFault> {
        self.faults.get(attempt as usize).copied().flatten()
    }
}

/// Running counters of one store's write traffic, folded into
/// [`DurableStats`] at run end.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreCounters {
    /// Save attempts that committed a (believed-)durable generation.
    pub saves_ok: u64,
    /// Save attempts that returned an error (failed fsync, dropped
    /// manifest).
    pub saves_failed: u64,
    /// Payload + manifest bytes physically written, across all attempts —
    /// the numerator of the write-amplification ratio.
    pub bytes_written: u64,
}

/// An atomic on-disk checkpoint store over one directory. See the module
/// docs for the commit protocol. Generation numbers are supplied by the
/// caller (solvers use the lineage-total update count, which is unique
/// and monotone).
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    plan: DiskFaultPlan,
    attempts: u64,
    keep: usize,
    counters: StoreCounters,
}

impl CheckpointStore {
    /// Opens (creating if needed) the store at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            plan: DiskFaultPlan::none(),
            attempts: 0,
            keep: KEEP_GENERATIONS,
            counters: StoreCounters::default(),
        })
    }

    /// Installs a [`DiskFaultPlan`] consulted on every subsequent save.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: DiskFaultPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Overrides how many valid generations a successful save retains
    /// (minimum 1; the newest valid generation is never deleted).
    #[must_use]
    pub fn with_retention(mut self, keep: usize) -> Self {
        self.keep = keep.max(1);
        self
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Write-traffic counters so far.
    pub fn counters(&self) -> StoreCounters {
        self.counters
    }

    fn payload_path(&self, generation: u64) -> PathBuf {
        self.dir.join(format!("gen-{generation:012}.ckpt"))
    }

    fn manifest_path(&self, generation: u64) -> PathBuf {
        self.dir.join(format!("gen-{generation:012}.mf"))
    }

    /// Commits `bytes` as generation `generation`: payload then manifest,
    /// each temp-file + fsync + rename, directory fsync last, then prunes
    /// old generations (never the newest valid one). Returns `Err` when
    /// the commit is *known* not to have landed (injected fsync failure or
    /// manifest drop, or a real I/O error); silent faults (torn write,
    /// bit rot) return `Ok` exactly because the writer cannot tell.
    pub fn save(&mut self, generation: u64, bytes: &[u8]) -> io::Result<()> {
        let fault = self.plan.fault_for(self.attempts);
        self.attempts += 1;
        let result = self.save_inner(generation, bytes, fault);
        match &result {
            Ok(()) => self.counters.saves_ok += 1,
            Err(_) => self.counters.saves_failed += 1,
        }
        if result.is_ok() {
            self.prune();
        }
        result
    }

    fn save_inner(
        &mut self,
        generation: u64,
        bytes: &[u8],
        fault: Option<DiskFault>,
    ) -> io::Result<()> {
        // Manifest describes the *intended* payload; a torn write below
        // diverges the file from it, which is the point.
        let mut manifest = Vec::with_capacity(MANIFEST_LEN);
        manifest.extend_from_slice(MANIFEST_MAGIC);
        manifest.extend_from_slice(&generation.to_le_bytes());
        manifest.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
        manifest.extend_from_slice(&fnv64(bytes).to_le_bytes());

        let payload_tmp = self.dir.join(format!("gen-{generation:012}.ckpt.tmp"));
        let written: &[u8] = match fault {
            Some(DiskFault::TornWrite { keep_bytes }) => {
                &bytes[..keep_bytes.min(bytes.len().saturating_sub(1))]
            }
            _ => bytes,
        };
        {
            let mut f = fs::File::create(&payload_tmp)?;
            f.write_all(written)?;
            if matches!(fault, Some(DiskFault::FailFsync)) {
                drop(f);
                let _ = fs::remove_file(&payload_tmp);
                self.counters.bytes_written += written.len() as u64;
                return Err(io::Error::other("injected fsync failure"));
            }
            f.sync_all()?;
        }
        self.counters.bytes_written += written.len() as u64;
        fs::rename(&payload_tmp, self.payload_path(generation))?;

        if matches!(fault, Some(DiskFault::DropManifest)) {
            // Crash between the two commits: payload landed, manifest
            // never will. The generation is invalid by construction.
            self.sync_dir()?;
            return Err(io::Error::other("injected crash before manifest commit"));
        }

        let manifest_tmp = self.dir.join(format!("gen-{generation:012}.mf.tmp"));
        {
            let mut f = fs::File::create(&manifest_tmp)?;
            f.write_all(&manifest)?;
            f.sync_all()?;
        }
        self.counters.bytes_written += manifest.len() as u64;
        fs::rename(&manifest_tmp, self.manifest_path(generation))?;
        self.sync_dir()?;

        if let Some(DiskFault::CorruptByte { offset, xor }) = fault {
            // Bit rot after the fact: flip one committed payload byte.
            let path = self.payload_path(generation);
            let mut f = fs::OpenOptions::new().read(true).write(true).open(&path)?;
            let len = f.metadata()?.len();
            if len > 0 {
                let pos = (offset as u64) % len;
                let mut b = [0u8; 1];
                f.seek(SeekFrom::Start(pos))?;
                f.read_exact(&mut b)?;
                b[0] ^= if xor == 0 { 1 } else { xor };
                f.seek(SeekFrom::Start(pos))?;
                f.write_all(&b)?;
                f.sync_all()?;
            }
        }
        Ok(())
    }

    fn sync_dir(&self) -> io::Result<()> {
        // Directory fsync makes the renames themselves durable. Some
        // platforms refuse to fsync a directory handle; that is not a
        // correctness problem for recovery, so it is best-effort.
        if let Ok(d) = fs::File::open(&self.dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }

    /// Generation numbers with a committed manifest, ascending (validity
    /// not yet checked).
    pub fn generations(&self) -> io::Result<Vec<u64>> {
        let mut gens = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(num) = name
                .strip_prefix("gen-")
                .and_then(|rest| rest.strip_suffix(".mf"))
            {
                if let Ok(g) = num.parse::<u64>() {
                    gens.push(g);
                }
            }
        }
        gens.sort_unstable();
        Ok(gens)
    }

    /// Whether generation `g` passes manifest validation: manifest parses,
    /// names `g`, and the payload matches its recorded length and
    /// checksum.
    pub fn is_valid(&self, generation: u64) -> bool {
        self.read_valid(generation).is_some()
    }

    fn read_valid(&self, generation: u64) -> Option<Vec<u8>> {
        let manifest = fs::read(self.manifest_path(generation)).ok()?;
        if manifest.len() != MANIFEST_LEN || &manifest[..8] != MANIFEST_MAGIC {
            return None;
        }
        let gen = u64::from_le_bytes(manifest[8..16].try_into().unwrap());
        let len = u64::from_le_bytes(manifest[16..24].try_into().unwrap());
        let sum = u64::from_le_bytes(manifest[24..32].try_into().unwrap());
        if gen != generation {
            return None;
        }
        let payload = fs::read(self.payload_path(generation)).ok()?;
        if payload.len() as u64 != len || fnv64(&payload) != sum {
            return None;
        }
        Some(payload)
    }

    /// The newest generation whose manifest, length, and checksum all
    /// verify, with its payload bytes — the recovery entry point. Torn,
    /// corrupted, or manifest-less generations are skipped; `None` when
    /// no generation survives.
    pub fn latest_valid(&self) -> Option<(u64, Vec<u8>)> {
        let gens = self.generations().ok()?;
        gens.iter()
            .rev()
            .find_map(|&g| self.read_valid(g).map(|bytes| (g, bytes)))
    }

    /// Deletes generations beyond the retention window, keeping the
    /// newest `keep` *valid* generations (and never touching anything at
    /// or above the oldest of those).
    fn prune(&self) {
        let Ok(gens) = self.generations() else { return };
        let valid: Vec<u64> = gens.iter().copied().filter(|&g| self.is_valid(g)).collect();
        if valid.len() <= self.keep {
            return;
        }
        let cutoff = valid[valid.len() - self.keep];
        for &g in gens.iter().filter(|&&g| g < cutoff) {
            let _ = fs::remove_file(self.payload_path(g));
            let _ = fs::remove_file(self.manifest_path(g));
        }
    }
}

/// Durability outcome of one solver run, reported in
/// [`crate::RunReport::durable`]. All-zero/`None` when
/// [`crate::SolverCfg::durable_dir`] is unset.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurableStats {
    /// Generation the run auto-resumed from, if the store held one.
    pub resumed_from: Option<u64>,
    /// Store write counters accumulated over the run.
    pub store: StoreCounters,
}

/// A checkpoint capture handed to the background writer: everything is
/// owned or pinned, so serialization and disk I/O happen entirely off the
/// solver's hot path. The model rides as a [`ReadPin`] — the wave loop
/// pays one pin increment, not an `O(dim)` clone.
struct CheckpointJob {
    generation: u64,
    solver: &'static str,
    updates: u64,
    version: u64,
    w: ReadPin<Vec<f64>>,
    history: SolverHistory,
    residuals: Vec<(u64, Vec<f64>)>,
}

/// One solver run's durability session: owns the [`CheckpointStore`], the
/// background writer thread, and the resume bookkeeping. Constructed by
/// the solvers when [`crate::SolverCfg::durable_dir`] is set.
pub struct DurableSession {
    store: Arc<Mutex<CheckpointStore>>,
    tx: Option<mpsc::Sender<CheckpointJob>>,
    writer: Option<thread::JoinHandle<()>>,
    resumed_from: Option<u64>,
    last_submitted: Option<u64>,
}

impl std::fmt::Debug for DurableSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableSession")
            .field("resumed_from", &self.resumed_from)
            .field("last_submitted", &self.last_submitted)
            .finish_non_exhaustive()
    }
}

impl DurableSession {
    /// Opens the store at `dir` and spawns the background writer.
    pub fn open(dir: &Path) -> io::Result<Self> {
        Self::with_store(CheckpointStore::open(dir)?)
    }

    /// Wraps an already-configured store (fault plans, retention).
    pub fn with_store(store: CheckpointStore) -> io::Result<Self> {
        let store = Arc::new(Mutex::new(store));
        let (tx, rx) = mpsc::channel::<CheckpointJob>();
        let writer_store = Arc::clone(&store);
        let writer = thread::Builder::new()
            .name("async-checkpointer".into())
            .spawn(move || {
                while let Ok(job) = rx.recv() {
                    let ckpt = Checkpoint {
                        solver: job.solver.to_string(),
                        updates: job.updates,
                        version: job.version,
                        w: job.w.value().clone(),
                        history: job.history,
                        residuals: Some(job.residuals),
                    };
                    // Release the pin before the (slow) disk commit so the
                    // snapshot ring can move on.
                    drop(job.w);
                    let bytes = ckpt.to_bytes();
                    let _ = writer_store
                        .lock()
                        .expect("checkpoint store poisoned")
                        .save(job.generation, &bytes);
                }
            })?;
        Ok(Self {
            store,
            tx: Some(tx),
            writer: Some(writer),
            resumed_from: None,
            last_submitted: None,
        })
    }

    /// The newest valid generation's checkpoint, recording it as this
    /// run's resume point. `None` on a cold start (empty or fully invalid
    /// store). The payload passed manifest validation, so a parse failure
    /// here means a foreign file wearing our manifest — surfaced as a
    /// cold start rather than a panic.
    pub fn take_resume(&mut self) -> Option<Checkpoint> {
        let store = self.store.lock().expect("checkpoint store poisoned");
        let (generation, bytes) = store.latest_valid()?;
        drop(store);
        let ckpt = Checkpoint::from_bytes(&bytes).ok()?;
        self.resumed_from = Some(generation);
        self.last_submitted = Some(generation);
        Some(ckpt)
    }

    /// Generation this session resumed from, if any.
    pub fn resumed_from(&self) -> Option<u64> {
        self.resumed_from
    }

    /// Queues one checkpoint capture for the background writer. The
    /// model `w` rides as a [`ReadPin`]; everything else is owned.
    /// Duplicate generations (e.g. the final save landing on a cadence
    /// boundary) are skipped.
    #[allow(clippy::too_many_arguments)]
    pub fn submit(
        &mut self,
        generation: u64,
        solver: &'static str,
        updates: u64,
        version: u64,
        w: ReadPin<Vec<f64>>,
        history: SolverHistory,
        residuals: Vec<(u64, Vec<f64>)>,
    ) {
        if self.last_submitted == Some(generation) {
            return;
        }
        self.last_submitted = Some(generation);
        if let Some(tx) = self.tx.as_ref() {
            let _ = tx.send(CheckpointJob {
                generation,
                solver,
                updates,
                version,
                w,
                history,
                residuals,
            });
        }
    }

    /// Drains the writer (joining its thread) and returns the run's
    /// durability outcome.
    pub fn finish(mut self) -> DurableStats {
        drop(self.tx.take());
        if let Some(writer) = self.writer.take() {
            let _ = writer.join();
        }
        DurableStats {
            resumed_from: self.resumed_from,
            store: self
                .store
                .lock()
                .expect("checkpoint store poisoned")
                .counters(),
        }
    }
}

impl Drop for DurableSession {
    fn drop(&mut self) {
        drop(self.tx.take());
        if let Some(writer) = self.writer.take() {
            let _ = writer.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn scratch_dir(tag: &str) -> PathBuf {
        let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("async-durable-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn payload(tag: u8, len: usize) -> Vec<u8> {
        (0..len).map(|i| tag ^ (i as u8)).collect()
    }

    #[test]
    fn save_and_recover_roundtrips() {
        let dir = scratch_dir("roundtrip");
        let mut store = CheckpointStore::open(&dir).unwrap();
        assert!(store.latest_valid().is_none(), "cold store is empty");
        store.save(10, &payload(1, 100)).unwrap();
        store.save(20, &payload(2, 100)).unwrap();
        let (generation, bytes) = store.latest_valid().expect("two generations");
        assert_eq!(generation, 20);
        assert_eq!(bytes, payload(2, 100));
        assert_eq!(store.generations().unwrap(), vec![10, 20]);
        let c = store.counters();
        assert_eq!(c.saves_ok, 2);
        assert_eq!(c.saves_failed, 0);
        assert_eq!(c.bytes_written, 2 * (100 + MANIFEST_LEN as u64));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopened_store_sees_prior_generations() {
        let dir = scratch_dir("reopen");
        let mut store = CheckpointStore::open(&dir).unwrap();
        store.save(7, &payload(3, 64)).unwrap();
        drop(store);
        let store = CheckpointStore::open(&dir).unwrap();
        let (generation, bytes) = store.latest_valid().expect("persisted");
        assert_eq!((generation, bytes), (7, payload(3, 64)));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_write_is_detected_and_skipped() {
        let dir = scratch_dir("torn");
        let mut store =
            CheckpointStore::open(&dir)
                .unwrap()
                .with_fault_plan(DiskFaultPlan::scripted(&[(
                    1,
                    DiskFault::TornWrite { keep_bytes: 17 },
                )]));
        store.save(1, &payload(1, 100)).unwrap();
        // The torn save *believes* it succeeded...
        store.save(2, &payload(2, 100)).unwrap();
        assert_eq!(store.counters().saves_ok, 2);
        // ...but recovery falls back to the intact generation.
        assert!(!store.is_valid(2));
        let (generation, bytes) = store.latest_valid().expect("gen 1 intact");
        assert_eq!((generation, bytes), (1, payload(1, 100)));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_byte_fails_the_checksum() {
        let dir = scratch_dir("rot");
        let mut store =
            CheckpointStore::open(&dir)
                .unwrap()
                .with_fault_plan(DiskFaultPlan::scripted(&[(
                    1,
                    DiskFault::CorruptByte { offset: 5, xor: 0 },
                )]));
        store.save(1, &payload(1, 50)).unwrap();
        store.save(2, &payload(2, 50)).unwrap();
        assert!(!store.is_valid(2), "rot must fail the checksum");
        assert_eq!(store.latest_valid().map(|(g, _)| g), Some(1));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_fsync_and_dropped_manifest_report_errors() {
        let dir = scratch_dir("errs");
        let mut store =
            CheckpointStore::open(&dir)
                .unwrap()
                .with_fault_plan(DiskFaultPlan::scripted(&[
                    (0, DiskFault::FailFsync),
                    (1, DiskFault::DropManifest),
                ]));
        assert!(store.save(1, &payload(1, 40)).is_err(), "fsync fault");
        assert!(store.save(2, &payload(2, 40)).is_err(), "manifest fault");
        assert!(store.latest_valid().is_none(), "nothing committed");
        assert_eq!(store.counters().saves_failed, 2);
        // The next (clean) attempt commits normally.
        store.save(3, &payload(3, 40)).unwrap();
        assert_eq!(store.latest_valid().map(|(g, _)| g), Some(3));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retention_keeps_the_newest_valid_generations() {
        let dir = scratch_dir("retain");
        let mut store = CheckpointStore::open(&dir).unwrap().with_retention(2);
        for g in 1..=5u64 {
            store.save(g * 10, &payload(g as u8, 30)).unwrap();
        }
        assert_eq!(store.generations().unwrap(), vec![40, 50]);
        assert_eq!(store.latest_valid().map(|(g, _)| g), Some(50));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retention_never_deletes_the_newest_valid_generation() {
        // Faulted newer saves must not push the only intact generation
        // out of the window.
        let dir = scratch_dir("retain-valid");
        let faults: Vec<(usize, DiskFault)> = (1..8)
            .map(|i| (i, DiskFault::TornWrite { keep_bytes: 3 }))
            .collect();
        let mut store = CheckpointStore::open(&dir)
            .unwrap()
            .with_retention(1)
            .with_fault_plan(DiskFaultPlan::scripted(&faults));
        store.save(1, &payload(9, 30)).unwrap();
        for g in 2..=8u64 {
            let _ = store.save(g, &payload(g as u8, 30));
        }
        let (generation, bytes) = store.latest_valid().expect("gen 1 survives");
        assert_eq!((generation, bytes), (1, payload(9, 30)));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scripted_and_random_plans_are_deterministic() {
        let a = DiskFaultPlan::random(42, 30);
        let b = DiskFaultPlan::random(42, 30);
        assert_eq!(a, b);
        assert_ne!(a, DiskFaultPlan::random(43, 30));
        assert!(!a.is_zero(), "a 30-slot random plan strikes somewhere");
        assert!(DiskFaultPlan::none().is_zero());
        let s = DiskFaultPlan::scripted(&[(2, DiskFault::FailFsync)]);
        assert_eq!(s.fault_for(2), Some(DiskFault::FailFsync));
        assert_eq!(s.fault_for(0), None);
        assert_eq!(s.fault_for(99), None);
    }

    #[test]
    fn manifest_for_wrong_generation_is_invalid() {
        let dir = scratch_dir("cross");
        let mut store = CheckpointStore::open(&dir).unwrap();
        store.save(1, &payload(1, 20)).unwrap();
        store.save(2, &payload(2, 20)).unwrap();
        // Swap gen 2's manifest with gen 1's: the embedded generation
        // number no longer matches the filename.
        fs::copy(store.manifest_path(1), store.manifest_path(2)).unwrap();
        assert!(!store.is_valid(2));
        assert_eq!(store.latest_valid().map(|(g, _)| g), Some(1));
        fs::remove_dir_all(&dir).unwrap();
    }
}
