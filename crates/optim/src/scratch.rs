//! The [`ScratchPool`]: checkout/return buffer recycling for the solver
//! hot path.
//!
//! Every steady-state solver iteration needs the same transient buffers —
//! sampled row indices, mini-batch margins, per-row loss coefficients, the
//! gather scratch, and the index/value arrays of the resulting
//! [`GradDelta`]. Allocating them per task is pure overhead; the pool
//! hands warm buffers to task closures ([`ScratchPool::checkout`]) and
//! takes them back after the server absorbs the result
//! ([`ScratchPool::give_back`], [`ScratchPool::recycle_delta`]), so the
//! iteration loop performs **zero heap allocations** once warm — the
//! property the `alloc_zero` counting-allocator test verifies.
//!
//! Ownership rules:
//!
//! * a [`TaskScratch`] is owned by exactly one task from checkout to
//!   give-back; the pool is shared (`Arc` + mutex) so worker threads and
//!   the server side exchange buffers safely;
//! * the buffers inside a produced [`GradDelta`] *travel with the result*
//!   (worker → server); the server returns them via
//!   [`ScratchPool::recycle_delta`] after folding the update into the
//!   model;
//! * dense buffers (gradients, velocities) cycle through
//!   [`ScratchPool::checkout_dense`] / the dense arm of `recycle_delta`.

use std::sync::{Arc, Mutex};

use async_linalg::{DeltaFold, GradDelta};

/// Per-task transient buffers. See the module docs for ownership rules.
#[derive(Debug, Default)]
pub struct TaskScratch {
    /// Sampled (block-local) row indices, strictly increasing.
    pub rows: Vec<u32>,
    /// Mini-batch margins `x_iᵀw`, parallel to `rows`.
    pub margins: Vec<f64>,
    /// Per-row loss-derivative coefficients, parallel to `rows`.
    pub coefs: Vec<f64>,
    /// Gather scratch for the sparse backward kernel.
    pub pairs: Vec<(u32, f64)>,
    /// Global row ids (SAGA's table-update message), parallel to `rows`.
    pub ids: Vec<u64>,
}

#[derive(Default)]
struct Inner {
    scratch: Vec<TaskScratch>,
    sparse: Vec<(Vec<u32>, Vec<f64>)>,
    dense: Vec<Vec<f64>>,
    folds: Vec<DeltaFold>,
}

/// A shared pool of reusable solver buffers. Cheap to clone (clones share
/// the pool); empty pools grow on demand and never shrink, so a fixed
/// workload stops allocating after its first few iterations.
#[derive(Clone, Default)]
pub struct ScratchPool {
    inner: Arc<Mutex<Inner>>,
}

impl ScratchPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("scratch pool poisoned")
    }

    /// Checks out a per-task scratch (warm if one was given back).
    pub fn checkout(&self) -> TaskScratch {
        self.lock().scratch.pop().unwrap_or_default()
    }

    /// Returns a per-task scratch to the pool.
    pub fn give_back(&self, s: TaskScratch) {
        self.lock().scratch.push(s);
    }

    /// Checks out an index/value buffer pair for a sparse delta.
    pub fn checkout_sparse(&self) -> (Vec<u32>, Vec<f64>) {
        self.lock().sparse.pop().unwrap_or_default()
    }

    /// Checks out a dense buffer of exactly `dim` zeros (a gradient or a
    /// velocity), reusing a returned buffer's capacity.
    pub fn checkout_dense(&self, dim: usize) -> Vec<f64> {
        let mut buf = self.lock().dense.pop().unwrap_or_default();
        buf.clear();
        buf.resize(dim, 0.0);
        buf
    }

    /// Returns a dense buffer to the pool.
    pub fn give_back_dense(&self, buf: Vec<f64>) {
        self.lock().dense.push(buf);
    }

    /// Checks out a [`DeltaFold`] accumulator cleared to dimension `dim`.
    pub fn checkout_fold(&self, dim: usize) -> DeltaFold {
        let mut f = self
            .lock()
            .folds
            .pop()
            .unwrap_or_else(|| DeltaFold::new(dim));
        f.clear(dim);
        f
    }

    /// Returns a fold accumulator to the pool.
    pub fn give_back_fold(&self, f: DeltaFold) {
        self.lock().folds.push(f);
    }

    /// Tears a consumed delta apart and returns its backing buffers to the
    /// pool — the server-side half of the zero-allocation cycle.
    pub fn recycle_delta(&self, delta: GradDelta) {
        match delta {
            GradDelta::Sparse(s) => {
                let (idx, val, _) = s.into_parts();
                self.lock().sparse.push((idx, val));
            }
            GradDelta::Dense(v) => self.lock().dense.push(v),
        }
    }

    /// Returns a SAGA id buffer to the pool (rides the scratch list via a
    /// fresh [`TaskScratch`] when none is checked out — ids travel with
    /// results, detached from their original scratch).
    pub fn recycle_ids(&self, ids: Vec<u64>) {
        let mut inner = self.lock();
        match inner.scratch.iter_mut().find(|s| s.ids.capacity() == 0) {
            Some(s) => s.ids = ids,
            None => inner.scratch.push(TaskScratch {
                ids,
                ..TaskScratch::default()
            }),
        }
    }

    /// Buffers currently parked in the pool, by kind:
    /// `(scratch, sparse pairs, dense, folds)`. Test instrumentation.
    pub fn depth(&self) -> (usize, usize, usize, usize) {
        let i = self.lock();
        (
            i.scratch.len(),
            i.sparse.len(),
            i.dense.len(),
            i.folds.len(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use async_linalg::SparseVec;

    #[test]
    fn checkout_reuses_returned_buffers() {
        let pool = ScratchPool::new();
        let mut s = pool.checkout();
        s.rows.reserve(100);
        let cap = s.rows.capacity();
        pool.give_back(s);
        let s2 = pool.checkout();
        assert!(s2.rows.capacity() >= cap, "warm buffer must come back");
        assert_eq!(pool.depth().0, 0);
        pool.give_back(s2);
        assert_eq!(pool.depth().0, 1);
    }

    #[test]
    fn sparse_delta_cycle_preserves_capacity() {
        let pool = ScratchPool::new();
        let (mut idx, mut val) = pool.checkout_sparse();
        idx.extend_from_slice(&[1, 5, 9]);
        val.extend_from_slice(&[1.0, -2.0, 0.5]);
        let caps = (idx.capacity(), val.capacity());
        let delta = GradDelta::Sparse(SparseVec::new(idx, val, 16).unwrap());
        pool.recycle_delta(delta);
        let (idx2, val2) = pool.checkout_sparse();
        assert_eq!((idx2.capacity(), val2.capacity()), caps);
        // Recycled buffers come back dirty; kernels clear them first.
        assert_eq!(idx2.len(), 3);
        assert_eq!(val2.len(), 3);
    }

    #[test]
    fn dense_checkout_is_zeroed_to_dim() {
        let pool = ScratchPool::new();
        let mut d = pool.checkout_dense(8);
        d[3] = 7.0;
        pool.give_back_dense(d);
        let d2 = pool.checkout_dense(5);
        assert_eq!(d2, vec![0.0; 5]);
        pool.recycle_delta(GradDelta::Dense(d2));
        assert_eq!(pool.checkout_dense(10), vec![0.0; 10]);
    }

    #[test]
    fn fold_checkout_clears_state() {
        let pool = ScratchPool::new();
        let mut f = pool.checkout_fold(4);
        GradDelta::Dense(vec![1.0; 4]).fold_into(1.0, &mut f);
        pool.give_back_fold(f);
        let f2 = pool.checkout_fold(6);
        assert_eq!(f2.dim(), 6);
        assert_eq!(f2.nnz(), 0);
        assert!(!f2.is_dense());
    }

    #[test]
    fn ids_recycle_round_trips() {
        let pool = ScratchPool::new();
        let mut ids = Vec::with_capacity(64);
        ids.push(7u64);
        pool.recycle_ids(ids);
        let s = pool.checkout();
        assert!(s.ids.capacity() >= 64);
    }
}
