//! Gradient compression for the worker → server wire: configuration
//! ([`CompressCfg`]) and the shared per-partition error-feedback state
//! ([`CompressorBank`]) the solvers route their deltas through.
//!
//! With compression on, each task's raw gradient is folded into its
//! partition's [`EfState`] residual, the top-k largest-magnitude
//! coordinates of the accumulated signal are selected, their values are
//! quantized to the configured wire format, and the **dequantized**
//! selection ships as a sparse [`GradDelta`] — so the server applies
//! exactly what a remote worker's decoded frame would reconstruct, and
//! the unshipped remainder stays in the residual for the next round
//! (error feedback). [`CompressCfg::Off`] bypasses all of it and is
//! bit-identical to a build without this module.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use async_linalg::{EfState, GradDelta, Quant, SparseVec};
use sparklet::Payload;

use crate::scratch::ScratchPool;

/// What the solvers do to a gradient delta before it ships.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CompressCfg {
    /// Ship deltas uncompressed — bit-identical to builds predating the
    /// compression layer (the default).
    #[default]
    Off,
    /// Error-feedback top-k sparsification: accumulate each raw gradient
    /// into the partition's residual, ship the `k` largest-magnitude
    /// coordinates of the accumulated signal in the `quant` wire format,
    /// and carry the rest forward.
    TopK {
        /// Coordinates shipped per delta (must be ≥ 1; `usize::MAX` with
        /// [`Quant::Exact`] is a lossless passthrough).
        k: usize,
        /// Wire format of the shipped values.
        quant: Quant,
    },
}

impl CompressCfg {
    /// True when deltas ship unmodified.
    pub fn is_off(&self) -> bool {
        matches!(self, CompressCfg::Off)
    }
}

/// The per-partition error-feedback accumulators of one solver run,
/// shared (`Arc`) between the driver and every task closure. Cheap to
/// clone; clones address the same states, which is how tests inject a
/// tracked bank and inspect residuals after the run.
#[derive(Clone, Default)]
pub struct CompressorBank {
    inner: Arc<Mutex<HashMap<usize, EfState>>>,
    rejected: Arc<AtomicU64>,
    track: bool,
}

impl std::fmt::Debug for CompressorBank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompressorBank")
            .field("track", &self.track)
            .field("rejected", &self.rejected.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl CompressorBank {
    /// An empty bank; partition states materialize on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty bank whose states record the telescoping sums
    /// (`Σ raw` and `Σ shipped` per coordinate) for invariant tests.
    pub fn with_tracking() -> Self {
        Self {
            inner: Arc::default(),
            rejected: Arc::default(),
            track: true,
        }
    }

    /// Compresses one task's raw delta for `part`: folds it into the
    /// partition's residual, selects and quantizes the top `k`
    /// coordinates, recycles the raw delta's buffers into `pool`, and
    /// returns the dequantized selection as a sparse delta plus its
    /// modeled wire bytes (the [`async_linalg::CompressedDelta`] frame
    /// size a remote worker would ship).
    ///
    /// A delta carrying a non-finite coordinate (a diverging task) is
    /// rejected by [`EfState::try_compress`] **before** it can poison the
    /// residual; the frame then falls back to shipping the raw delta
    /// unmodified (charged as an `Exact` compressed frame) and bumps
    /// [`CompressorBank::rejected_frames`], while the partition's
    /// error-feedback state stays intact for subsequent finite deltas.
    pub fn compress(
        &self,
        part: usize,
        g: GradDelta,
        k: usize,
        quant: Quant,
        pool: &ScratchPool,
    ) -> (GradDelta, u64) {
        let dim = g.dim();
        let mut map = self.inner.lock().expect("compressor bank poisoned");
        let ef = map.entry(part).or_insert_with(|| {
            let s = EfState::new(dim);
            if self.track {
                s.with_tracking()
            } else {
                s
            }
        });
        if ef.try_compress(&g, k, quant).is_err() {
            drop(map);
            self.rejected.fetch_add(1, Ordering::Relaxed);
            // Exact passthrough: compressed-frame tag + GradDelta payload.
            let wire = 1 + g.encoded_len();
            return (g, wire);
        }
        let (mut idx, mut val) = pool.checkout_sparse();
        idx.clear();
        val.clear();
        idx.extend_from_slice(ef.shipped_indices());
        val.extend_from_slice(ef.shipped_values());
        let wire = ef.wire_bytes();
        drop(map);
        pool.recycle_delta(g);
        let delta = GradDelta::Sparse(
            SparseVec::new(idx, val, dim).expect("top-k selection is sorted and in range"),
        );
        (delta, wire)
    }

    /// Partitions with materialized state, ascending.
    pub fn parts(&self) -> Vec<usize> {
        let map = self.inner.lock().expect("compressor bank poisoned");
        let mut parts: Vec<usize> = map.keys().copied().collect();
        parts.sort_unstable();
        parts
    }

    /// Runs `f` against `part`'s error-feedback state (residuals,
    /// tracked sums), if the partition ever compressed a delta.
    pub fn with_part<R>(&self, part: usize, f: impl FnOnce(&EfState) -> R) -> Option<R> {
        let map = self.inner.lock().expect("compressor bank poisoned");
        map.get(&part).map(f)
    }

    /// Number of partitions with materialized error-feedback state.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("compressor bank poisoned").len()
    }

    /// True when no partition has compressed anything yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Frames rejected (and shipped raw) because the delta carried a
    /// non-finite coordinate.
    pub fn rejected_frames(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Drops `part`'s error-feedback state (its un-shipped residual is
    /// discarded). Call when a partition is permanently retired.
    pub fn remove_part(&self, part: usize) -> bool {
        self.inner
            .lock()
            .expect("compressor bank poisoned")
            .remove(&part)
            .is_some()
    }

    /// Snapshot of every partition's error-feedback residual, sorted by
    /// partition — the checkpointable face of the bank
    /// ([`crate::Checkpoint::residuals`]). Empty for an uncompressed run.
    pub fn export_residuals(&self) -> Vec<(u64, Vec<f64>)> {
        let map = self.inner.lock().expect("compressor bank poisoned");
        let mut out: Vec<(u64, Vec<f64>)> = map
            .iter()
            .map(|(&part, ef)| (part as u64, ef.residual().to_vec()))
            .collect();
        out.sort_unstable_by_key(|&(part, _)| part);
        out
    }

    /// Rebuilds the bank's partition states from checkpointed residuals
    /// (the inverse of [`CompressorBank::export_residuals`]), discarding
    /// whatever states existed before. Compression resumed from a restored
    /// bank is bit-identical to continuing the original one
    /// ([`EfState::from_residual`]).
    pub fn restore_residuals(&self, residuals: &[(u64, Vec<f64>)]) {
        let mut map = self.inner.lock().expect("compressor bank poisoned");
        map.clear();
        for (part, residual) in residuals {
            let s = EfState::from_residual(residual.clone());
            let s = if self.track { s.with_tracking() } else { s };
            map.insert(*part as usize, s);
        }
    }

    /// Keeps only partitions `< nparts`, dropping state for anything
    /// beyond the run's partition universe. Solvers call this at run
    /// start so a bank reused across runs (or a run with fewer
    /// partitions after churn re-keying) cannot grow without bound —
    /// within one run the key space is already bounded because dead
    /// workers' partitions are re-dealt over the alive set, not
    /// re-keyed.
    pub fn retain_parts_below(&self, nparts: usize) {
        self.inner
            .lock()
            .expect("compressor bank poisoned")
            .retain(|&p, _| p < nparts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_is_the_default_and_reports_itself() {
        assert!(CompressCfg::default().is_off());
        assert!(!CompressCfg::TopK {
            k: 4,
            quant: Quant::Exact
        }
        .is_off());
    }

    #[test]
    fn bank_compresses_per_partition_and_recycles_buffers() {
        let bank = CompressorBank::with_tracking();
        let pool = ScratchPool::new();
        let g = GradDelta::Dense(vec![3.0, -0.5, 0.25, -4.0]);
        let (d, wire) = bank.compress(0, g, 2, Quant::Exact, &pool);
        match &d {
            GradDelta::Sparse(s) => {
                assert_eq!(s.indices(), &[0, 3]);
                assert_eq!(s.values(), &[3.0, -4.0]);
            }
            GradDelta::Dense(_) => panic!("compressed deltas are sparse"),
        }
        assert_eq!(wire, async_linalg::quant_wire_bytes(Quant::Exact, 2));
        // The raw delta's dense buffer went back to the pool.
        assert_eq!(pool.depth().2, 1);
        // The unshipped coordinates wait in the residual.
        let resid = bank
            .with_part(0, |ef| ef.residual().to_vec())
            .expect("part 0 materialized");
        assert_eq!(resid, vec![0.0, -0.5, 0.25, 0.0]);
        assert_eq!(bank.parts(), vec![0]);
        assert!(bank.with_part(7, |_| ()).is_none());
        // A clone addresses the same states.
        assert_eq!(bank.clone().parts(), vec![0]);
    }

    #[test]
    fn non_finite_frames_fall_back_to_exact_and_spare_the_residual() {
        let bank = CompressorBank::with_tracking();
        let pool = ScratchPool::new();
        bank.compress(
            0,
            GradDelta::Dense(vec![1.0, 0.0, 0.0, -2.0]),
            1,
            Quant::I8,
            &pool,
        );
        let resid_before = bank.with_part(0, |ef| ef.residual().to_vec()).unwrap();
        // A divergent task hands in a NaN: the frame ships raw (Exact)
        // instead of poisoning partition 0's error-feedback state.
        let bad = GradDelta::Dense(vec![0.5, f64::NAN, 0.0, 0.0]);
        let bad_wire = 1 + sparklet::Payload::encoded_len(&bad);
        let (d, wire) = bank.compress(0, bad, 1, Quant::I8, &pool);
        match &d {
            GradDelta::Dense(v) => assert!(v[1].is_nan(), "raw frame passes through"),
            GradDelta::Sparse(_) => panic!("fallback ships the unmodified delta"),
        }
        assert_eq!(wire, bad_wire, "charged as an Exact compressed frame");
        assert_eq!(bank.rejected_frames(), 1);
        let resid_after = bank.with_part(0, |ef| ef.residual().to_vec()).unwrap();
        assert_eq!(
            resid_after, resid_before,
            "residual untouched by the poison"
        );
        assert!(resid_after.iter().all(|v| v.is_finite()));
        // Finite compression keeps working against intact state.
        let (_, _) = bank.compress(
            0,
            GradDelta::Dense(vec![0.0, 1.0, 0.0, 0.0]),
            1,
            Quant::I8,
            &pool,
        );
        assert!(bank
            .with_part(0, |ef| ef.residual().iter().all(|v| v.is_finite()))
            .unwrap());
    }

    #[test]
    fn exported_residuals_restore_bit_identically() {
        // Drive a bank, export, restore into a fresh bank, and continue
        // both over the same stream: shipped selections and residuals must
        // stay bitwise equal — the durable-resume contract.
        let bank = CompressorBank::new();
        let pool = ScratchPool::new();
        let stream = |k: u32, part: usize| {
            GradDelta::Dense(vec![
                1.5 * f64::from(k),
                -0.25,
                f64::from(k * k) * 0.125,
                -3.0 + f64::from(part as u32),
            ])
        };
        for k in 0..3 {
            for part in [0usize, 2] {
                bank.compress(part, stream(k, part), 2, Quant::F16, &pool);
            }
        }
        let exported = bank.export_residuals();
        assert_eq!(exported.len(), 2);
        assert!(exported.windows(2).all(|w| w[0].0 < w[1].0), "sorted");
        let restored = CompressorBank::new();
        restored.restore_residuals(&exported);
        assert_eq!(restored.parts(), vec![0, 2]);
        for k in 3..6 {
            for part in [0usize, 2] {
                let (a, wa) = bank.compress(part, stream(k, part), 2, Quant::F16, &pool);
                let (b, wb) = restored.compress(part, stream(k, part), 2, Quant::F16, &pool);
                assert_eq!(a, b, "k={k} part={part}");
                assert_eq!(wa, wb);
            }
        }
        assert_eq!(bank.export_residuals(), restored.export_residuals());
    }

    #[test]
    fn bank_prunes_retired_partitions() {
        let bank = CompressorBank::new();
        let pool = ScratchPool::new();
        for part in [0usize, 1, 5, 9] {
            bank.compress(
                part,
                GradDelta::Dense(vec![1.0, 2.0]),
                1,
                Quant::Exact,
                &pool,
            );
        }
        assert_eq!(bank.len(), 4);
        assert!(!bank.is_empty());
        // A rerun with a smaller partition universe drops the stragglers.
        bank.retain_parts_below(2);
        assert_eq!(bank.parts(), vec![0, 1]);
        assert!(bank.remove_part(1));
        assert!(!bank.remove_part(1), "already gone");
        assert_eq!(bank.len(), 1);
        bank.retain_parts_below(0);
        assert!(bank.is_empty());
    }
}
