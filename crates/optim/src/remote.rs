//! Wire routines for running the solvers on the multi-process
//! [`RemoteEngine`](sparklet::RemoteEngine).
//!
//! A remote worker cannot execute task closures, so each solver's gradient
//! task has a *wire form*: a [`RemoteRoutine`] whose `build` runs
//! driver-side at submission (against the worker's cache mirror — the same
//! instant the simulator runs closures, so model-version resolution and
//! byte accounting agree with the deterministic oracle) and whose routine
//! handler recomputes the identical f64 arithmetic inside the worker
//! process. Two routines cover all three solvers:
//!
//! * [`ROUTINE_GRAD`] — the mini-batch gradient wave shared by ASGD and
//!   momentum SGD. The request ships only the objective, the sampling
//!   seed/version, and a [`WirePlan`] for the current model; the worker
//!   re-derives the batch from the pure sampling RNG.
//! * [`ROUTINE_ASAGA`] — the SAGA telescoping-difference wave. Batch rows
//!   and their per-sample historical versions **must** be resolved
//!   driver-side (the server attaches version IDs at submission), so the
//!   request carries the sampled rows, their versions, and one plan per
//!   distinct version.
//!
//! Each partition's data block crosses the wire **once per worker
//! incarnation**: the driver mirrors which blocks a worker holds under a
//! reserved cache namespace ([`BLOCKS_NS`]) and attaches the block only to
//! the first task that needs it; a revived worker gets a fresh mirror and
//! is re-shipped automatically. Shipped blocks are deliberately *not*
//! charged to the task's modelled bytes — the in-process engines
//! materialize partitions without charging either, and the sim-vs-remote
//! accounting contract is "identical bytes", not "more honest bytes".
//!
//! [`worker_registry`] assembles the handler table; the `async_worker`
//! binary is `worker_main(worker_registry())`.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use async_core::{AsyncBcast, PatchCodes, RemoteRoutine, WirePlan};
use async_data::{sampler, Block};
use async_linalg::{
    CompressedDelta, CsrMatrix, DenseMatrix, EfState, GradDelta, Matrix, Quant, SparseVec,
};
use bytes::{BufMut, BytesMut};
use sparklet::{DecodeError, Payload, Rdd, RoutineRegistry, WorkerCtx};

use crate::asaga::DeltaMsg;
use crate::compression::CompressCfg;
use crate::objective::Objective;
use crate::solver::GradMsg;

/// Routine id of the ASGD/MSGD mini-batch gradient task.
pub const ROUTINE_GRAD: u32 = 1;

/// Routine id of the ASAGA telescoping-difference task.
pub const ROUTINE_ASAGA: u32 = 2;

/// Reserved worker-cache namespace for shipped data blocks, keyed
/// `(BLOCKS_NS, partition)`. History broadcasts allocate ids from 0
/// upward, so the top of the id space cannot collide.
pub const BLOCKS_NS: u64 = u64::MAX - 1;

/// Reserved worker-cache namespace for per-partition error-feedback
/// compressor state, keyed `(EF_NS, partition)` — the worker-process twin
/// of the driver's [`crate::CompressorBank`]. Lives (and dies) with the
/// worker incarnation, exactly like its shipped blocks.
pub const EF_NS: u64 = u64::MAX - 2;

// ---------------------------------------------------------------------------
// Positioned decoding
// ---------------------------------------------------------------------------

/// A positioned reader over untrusted request/response bytes: every
/// primitive advances the offset and failures report it, so torn frames
/// diagnose like any other [`DecodeError`].
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, at: 0 }
    }

    fn rest(&self) -> &'a [u8] {
        self.bytes.get(self.at..).unwrap_or(&[])
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self.rest().first().ok_or(DecodeError::Truncated {
            at: self.at,
            needed: 1,
        })?;
        self.at += 1;
        Ok(b)
    }

    fn i8(&mut self) -> Result<i8, DecodeError> {
        Ok(self.u8()? as i8)
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        let rest = self.rest();
        let b = rest.get(..2).ok_or_else(|| DecodeError::Truncated {
            at: self.at + rest.len(),
            needed: 2usize.saturating_sub(rest.len()),
        })?;
        self.at += 2;
        Ok(u16::from_le_bytes(b.try_into().expect("2-byte slice")))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        let rest = self.rest();
        let b = rest.get(..4).ok_or_else(|| DecodeError::Truncated {
            at: self.at + rest.len(),
            needed: 4usize.saturating_sub(rest.len()),
        })?;
        self.at += 4;
        Ok(u32::from_le_bytes(b.try_into().expect("4-byte slice")))
    }

    fn payload<T: Payload>(&mut self) -> Result<T, DecodeError> {
        let at = self.at;
        let (v, n) = T::decode(self.rest()).map_err(|e| e.shifted(at))?;
        self.at += n;
        Ok(v)
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        self.payload::<u64>()
    }

    fn f64(&mut self) -> Result<f64, DecodeError> {
        self.payload::<f64>()
    }

    /// Validates an untrusted element count against the bytes actually
    /// remaining (each element consumes at least `min_bytes`), so a
    /// hostile prefix can never size an allocation.
    fn checked_count(&self, n: u64, min_bytes: usize) -> Result<usize, DecodeError> {
        let n_us = n as usize;
        if n_us
            .checked_mul(min_bytes)
            .is_none_or(|need| need > self.rest().len())
        {
            return Err(DecodeError::LengthOverflow {
                at: self.at,
                len: n,
            });
        }
        Ok(n_us)
    }
}

fn put_u32s(buf: &mut BytesMut, vals: &[u32]) {
    buf.put_u64_le(vals.len() as u64);
    for &v in vals {
        buf.put_u32_le(v);
    }
}

fn get_u32s(r: &mut Reader) -> Result<Vec<u32>, DecodeError> {
    let n64 = r.u64()?;
    let n = r.checked_count(n64, 4)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.u32()?);
    }
    Ok(out)
}

fn put_u64s(buf: &mut BytesMut, vals: &[u64]) {
    buf.put_u64_le(vals.len() as u64);
    for &v in vals {
        buf.put_u64_le(v);
    }
}

fn get_u64s(r: &mut Reader) -> Result<Vec<u64>, DecodeError> {
    let n64 = r.u64()?;
    let n = r.checked_count(n64, 8)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.u64()?);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Objective / block / plan codecs
// ---------------------------------------------------------------------------

fn encode_objective(o: &Objective, buf: &mut BytesMut) {
    match o {
        Objective::LeastSquares { lambda } => {
            buf.put_u8(0);
            buf.put_f64_le(*lambda);
        }
        Objective::Logistic { lambda } => {
            buf.put_u8(1);
            buf.put_f64_le(*lambda);
        }
    }
}

fn decode_objective(r: &mut Reader) -> Result<Objective, DecodeError> {
    let at = r.at;
    let kind = r.u8()?;
    let lambda = r.f64()?;
    match kind {
        0 => Ok(Objective::LeastSquares { lambda }),
        1 => Ok(Objective::Logistic { lambda }),
        tag => Err(DecodeError::BadTag { at, tag }),
    }
}

fn quant_byte(q: Quant) -> u8 {
    match q {
        Quant::Exact => 0,
        Quant::I8 => 1,
        Quant::F16 => 2,
    }
}

fn decode_quant(r: &mut Reader) -> Result<Quant, DecodeError> {
    let at = r.at;
    match r.u8()? {
        0 => Ok(Quant::Exact),
        1 => Ok(Quant::I8),
        2 => Ok(Quant::F16),
        tag => Err(DecodeError::BadTag { at, tag }),
    }
}

fn encode_compress(c: &CompressCfg, buf: &mut BytesMut) {
    match c {
        CompressCfg::Off => buf.put_u8(0),
        CompressCfg::TopK { k, quant } => {
            buf.put_u8(1);
            buf.put_u64_le(*k as u64);
            buf.put_u8(quant_byte(*quant));
        }
    }
}

fn decode_compress(r: &mut Reader) -> Result<CompressCfg, DecodeError> {
    let at = r.at;
    match r.u8()? {
        0 => Ok(CompressCfg::Off),
        1 => {
            let k = r.u64()? as usize;
            let quant = decode_quant(r)?;
            if k == 0 {
                return Err(DecodeError::Invalid {
                    at,
                    what: "top-k compression with k = 0",
                });
            }
            Ok(CompressCfg::TopK { k, quant })
        }
        tag => Err(DecodeError::BadTag { at, tag }),
    }
}

/// Encodes a block for its once-per-incarnation shipment: geometry header,
/// feature storage (dense flat or CSR row-wise), labels.
fn encode_block(b: &Block, buf: &mut BytesMut) {
    buf.put_u64_le(b.row_offset() as u64);
    buf.put_u64_le(b.total_rows() as u64);
    buf.put_u64_le(b.part_id() as u64);
    match b.features() {
        Matrix::Dense(d) => {
            buf.put_u8(0);
            buf.put_u64_le(d.nrows() as u64);
            buf.put_u64_le(d.ncols() as u64);
            d.as_flat().encode(buf);
        }
        Matrix::Sparse(csr) => {
            buf.put_u8(1);
            buf.put_u64_le(csr.nrows() as u64);
            buf.put_u64_le(csr.ncols() as u64);
            for i in 0..csr.nrows() {
                // The `SparseVec` wire shape, written straight from the
                // CSR row without materializing a vector.
                let (idx, val) = csr.row(i);
                buf.put_u64_le(idx.len() as u64);
                buf.put_u64_le(csr.ncols() as u64);
                for (&ix, &v) in idx.iter().zip(val) {
                    buf.put_u32_le(ix);
                    buf.put_f64_le(v);
                }
            }
        }
    }
    b.labels().encode(buf);
}

fn decode_block(r: &mut Reader) -> Result<Block, DecodeError> {
    let row_offset = r.u64()? as usize;
    let total_rows = r.u64()? as usize;
    let part_id = r.u64()? as usize;
    let at_kind = r.at;
    let kind = r.u8()?;
    let nrows64 = r.u64()?;
    let ncols = r.u64()? as usize;
    let features = match kind {
        0 => {
            let at = r.at;
            let flat: Vec<f64> = r.payload()?;
            let expect = (nrows64 as usize)
                .checked_mul(ncols)
                .ok_or(DecodeError::LengthOverflow { at, len: nrows64 })?;
            if flat.len() != expect {
                return Err(DecodeError::Invalid {
                    at,
                    what: "dense block storage does not match its shape",
                });
            }
            let d = DenseMatrix::from_flat(flat, nrows64 as usize, ncols).map_err(|_| {
                DecodeError::Invalid {
                    at,
                    what: "dense block shape rejected",
                }
            })?;
            Matrix::Dense(d)
        }
        1 => {
            // Every encoded row carries at least its 16-byte header.
            let nrows = r.checked_count(nrows64, 16)?;
            let at = r.at;
            let mut rows = Vec::with_capacity(nrows);
            for _ in 0..nrows {
                rows.push(r.payload::<SparseVec>()?);
            }
            let csr = CsrMatrix::from_rows(&rows, ncols).map_err(|_| DecodeError::Invalid {
                at,
                what: "sparse block rows rejected",
            })?;
            Matrix::Sparse(csr)
        }
        tag => return Err(DecodeError::BadTag { at: at_kind, tag }),
    };
    let at = r.at;
    let labels: Vec<f64> = r.payload()?;
    if labels.len() != features.nrows() || row_offset + features.nrows() > total_rows {
        return Err(DecodeError::Invalid {
            at,
            what: "block labels or row range inconsistent with its features",
        });
    }
    Ok(Block::from_parts(
        features, labels, row_offset, total_rows, part_id,
    ))
}

fn encode_plan(p: &WirePlan, buf: &mut BytesMut) {
    match p {
        WirePlan::Cached {
            version,
            evict_below,
        } => {
            buf.put_u8(0);
            buf.put_u64_le(*version);
            buf.put_u64_le(*evict_below);
        }
        WirePlan::Snapshot {
            version,
            values,
            evict_below,
        } => {
            buf.put_u8(1);
            buf.put_u64_le(*version);
            buf.put_u64_le(*evict_below);
            values.encode(buf);
        }
        WirePlan::Patch {
            base,
            version,
            indices,
            values,
            evict_below,
        } => {
            buf.put_u8(2);
            buf.put_u64_le(*base);
            buf.put_u64_le(*version);
            buf.put_u64_le(*evict_below);
            buf.put_u64_le(indices.len() as u64);
            for (&i, &v) in indices.iter().zip(values.iter()) {
                buf.put_u32_le(i);
                buf.put_f64_le(v);
            }
        }
        WirePlan::QPatch {
            base,
            version,
            indices,
            scale,
            codes,
            evict_below,
        } => {
            buf.put_u8(3);
            buf.put_u64_le(*base);
            buf.put_u64_le(*version);
            buf.put_u64_le(*evict_below);
            buf.put_f64_le(*scale);
            buf.put_u8(quant_byte(codes.quant()));
            buf.put_u64_le(indices.len() as u64);
            match codes {
                PatchCodes::I8(cs) => {
                    for (&i, &c) in indices.iter().zip(cs.iter()) {
                        buf.put_u32_le(i);
                        buf.put_i8(c);
                    }
                }
                PatchCodes::F16(cs) => {
                    for (&i, &c) in indices.iter().zip(cs.iter()) {
                        buf.put_u32_le(i);
                        buf.put_u16_le(c);
                    }
                }
            }
        }
    }
}

fn decode_plan(r: &mut Reader) -> Result<WirePlan, DecodeError> {
    let at = r.at;
    let kind = r.u8()?;
    match kind {
        0 => Ok(WirePlan::Cached {
            version: r.u64()?,
            evict_below: r.u64()?,
        }),
        1 => {
            let version = r.u64()?;
            let evict_below = r.u64()?;
            let values: Vec<f64> = r.payload()?;
            Ok(WirePlan::Snapshot {
                version,
                values: Arc::new(values),
                evict_below,
            })
        }
        2 => {
            let base = r.u64()?;
            let version = r.u64()?;
            let evict_below = r.u64()?;
            let n64 = r.u64()?;
            let n = r.checked_count(n64, 12)?;
            let mut indices = Vec::with_capacity(n);
            let mut values = Vec::with_capacity(n);
            for _ in 0..n {
                indices.push(r.u32()?);
                values.push(r.f64()?);
            }
            Ok(WirePlan::Patch {
                base,
                version,
                indices,
                values,
                evict_below,
            })
        }
        3 => {
            let base = r.u64()?;
            let version = r.u64()?;
            let evict_below = r.u64()?;
            let at_scale = r.at;
            let scale = r.f64()?;
            if !scale.is_finite() || scale < 0.0 {
                return Err(DecodeError::Invalid {
                    at: at_scale,
                    what: "quantized patch scale must be finite and non-negative",
                });
            }
            let quant = decode_quant(r)?;
            let n64 = r.u64()?;
            let codes = match quant {
                Quant::I8 => {
                    let n = r.checked_count(n64, 5)?;
                    let mut indices = Vec::with_capacity(n);
                    let mut cs = Vec::with_capacity(n);
                    for _ in 0..n {
                        indices.push(r.u32()?);
                        cs.push(r.i8()?);
                    }
                    (indices, PatchCodes::I8(cs))
                }
                Quant::F16 => {
                    let n = r.checked_count(n64, 6)?;
                    let mut indices = Vec::with_capacity(n);
                    let mut cs = Vec::with_capacity(n);
                    for _ in 0..n {
                        indices.push(r.u32()?);
                        cs.push(r.u16()?);
                    }
                    (indices, PatchCodes::F16(cs))
                }
                Quant::Exact => {
                    return Err(DecodeError::Invalid {
                        at: at_scale,
                        what: "quantized patch with exact format (use tag 2)",
                    })
                }
            };
            let (indices, codes) = codes;
            Ok(WirePlan::QPatch {
                base,
                version,
                indices,
                scale,
                codes,
                evict_below,
            })
        }
        tag => Err(DecodeError::BadTag { at, tag }),
    }
}

// ---------------------------------------------------------------------------
// Block shipping (driver mirror + worker cache)
// ---------------------------------------------------------------------------

/// Driver-side: decides whether `part`'s block must travel with this task
/// (first task to `mirror`'s incarnation touching the partition) and
/// records the shipment in the mirror. Never charges bytes — see the
/// module docs.
fn ship_block_if_new(mirror: &mut WorkerCtx, part: usize, block: &Block, buf: &mut BytesMut) {
    let key = (BLOCKS_NS, part as u64);
    if mirror.cache_get(key).is_some() {
        buf.put_u8(0);
    } else {
        mirror.cache_put_local(key, Arc::new(()));
        buf.put_u8(1);
        encode_block(block, buf);
    }
}

/// Worker-side: materializes `part`'s block from the request (caching it)
/// or from the local cache of a previous task.
fn resolve_block(
    ctx: &mut WorkerCtx,
    part: usize,
    r: &mut Reader,
) -> Result<Arc<Block>, DecodeError> {
    let key = (BLOCKS_NS, part as u64);
    let at = r.at;
    if r.u8()? == 1 {
        let block = Arc::new(decode_block(r)?);
        ctx.cache_put_local(key, block.clone());
        return Ok(block);
    }
    let cached = ctx.cache_get(key).ok_or(DecodeError::Invalid {
        at,
        what: "task expects its block cached, but this incarnation never received it",
    })?;
    cached
        .downcast::<Block>()
        .map_err(|_| DecodeError::Invalid {
            at,
            what: "block cache entry has the wrong type",
        })
}

// ---------------------------------------------------------------------------
// Worker-side error-feedback state
// ---------------------------------------------------------------------------

/// Worker-side: the partition's error-feedback compressor, materialized on
/// first use and cached under [`EF_NS`] for the rest of the incarnation. A
/// revived worker starts with a zero residual — exactly like it starts
/// without its blocks — which perturbs *which* coordinates ship, never the
/// correctness of what the server applies.
fn worker_ef(ctx: &mut WorkerCtx, part: usize, dim: usize) -> Arc<Mutex<EfState>> {
    let key = (EF_NS, part as u64);
    if let Some(cached) = ctx.cache_get(key) {
        if let Ok(ef) = cached.downcast::<Mutex<EfState>>() {
            return ef;
        }
    }
    let ef = Arc::new(Mutex::new(EfState::new(dim)));
    ctx.cache_put_local(key, ef.clone());
    ef
}

/// Worker-side: compresses a computed delta per the request's
/// [`CompressCfg`] and encodes the response's delta section — the plain
/// [`GradDelta`] bytes when compression is off (bit-identical to builds
/// predating compression), a [`CompressedDelta`] frame otherwise.
///
/// A delta carrying a non-finite coordinate is rejected by
/// [`EfState::try_compress`] before it can poison the incarnation's
/// residual; the response then ships the raw delta as an
/// [`CompressedDelta::Exact`] frame (cold path: one clone) so the server
/// still sees exactly what the task computed.
fn encode_response_delta(
    ctx: &mut WorkerCtx,
    part: usize,
    g: &GradDelta,
    compress: CompressCfg,
    buf: &mut BytesMut,
) {
    match compress {
        CompressCfg::Off => g.encode(buf),
        CompressCfg::TopK { k, quant } => {
            let ef = worker_ef(ctx, part, g.dim());
            let mut ef = ef.lock().expect("worker ef state poisoned");
            if ef.try_compress(g, k, quant).is_err() {
                CompressedDelta::Exact(g.clone()).encode(buf);
            } else {
                ef.to_compressed().encode(buf);
            }
        }
    }
}

/// Driver-side: decodes a response's delta section per the submission's
/// [`CompressCfg`], returning the delta the server applies plus its
/// modeled wire bytes.
fn decode_response_delta(
    r: &mut Reader,
    compress: CompressCfg,
) -> Result<(GradDelta, u64), DecodeError> {
    if compress.is_off() {
        let g: GradDelta = r.payload()?;
        let wire = g.encoded_len();
        Ok((g, wire))
    } else {
        let cd: CompressedDelta = r.payload()?;
        let wire = cd.wire_bytes();
        Ok((cd.to_delta(), wire))
    }
}

// ---------------------------------------------------------------------------
// Routine: mini-batch gradient (ASGD / MSGD)
// ---------------------------------------------------------------------------

/// The wire form of one `submit_grad_wave` submission. `build` resolves
/// the model through [`async_core::HistoryHandle::wire_plan`] — the
/// networked twin of the closure's `value_incremental` — and ships the
/// pure sampling inputs;
/// the worker re-derives the identical batch.
pub(crate) fn grad_routine(
    rdd: &Rdd<Block>,
    bcast: &AsyncBcast<Vec<f64>>,
    objective: Objective,
    seed: u64,
    version: u64,
    fraction: f64,
    compress: CompressCfg,
) -> RemoteRoutine {
    let ops = rdd.ops();
    let handle = bcast.handle();
    let bcast_id = bcast.id();
    RemoteRoutine {
        routine: ROUTINE_GRAD,
        build: Arc::new(move |mirror: &mut WorkerCtx, part: usize| {
            let data = ops.compute(part);
            let block = &data[0];
            // Model first, exactly like the closure: the plan's charges
            // are the bytes `value_incremental` would have charged.
            let plan = handle.wire_plan(mirror);
            let mut buf = BytesMut::new();
            encode_objective(&objective, &mut buf);
            buf.put_u64_le(seed);
            buf.put_u64_le(version);
            buf.put_u64_le(bcast_id);
            buf.put_f64_le(fraction);
            encode_compress(&compress, &mut buf);
            buf.put_u64_le(part as u64);
            ship_block_if_new(mirror, part, block, &mut buf);
            encode_plan(&plan, &mut buf);
            buf.into_vec()
        }),
        decode: Arc::new(move |bytes: &[u8]| {
            let mut r = Reader::new(bytes);
            let (g, wire_bytes) = decode_response_delta(&mut r, compress)?;
            let entries = r.u64()?;
            Ok(Box::new(GradMsg {
                g,
                entries,
                wire_bytes,
            }))
        }),
    }
}

fn grad_handler(ctx: &mut WorkerCtx, request: &[u8]) -> Result<Vec<u8>, DecodeError> {
    let mut r = Reader::new(request);
    let objective = decode_objective(&mut r)?;
    let seed = r.u64()?;
    let version = r.u64()?;
    let bcast_id = r.u64()?;
    let fraction = r.f64()?;
    let compress = decode_compress(&mut r)?;
    let part = r.u64()? as usize;
    let block = resolve_block(ctx, part, &mut r)?;
    let plan = decode_plan(&mut r)?;
    let w = plan.apply(ctx, bcast_id);
    // The same pure RNG the in-process closure derives: identical batch.
    let mut rng = sampler::derive_rng(seed, version, part as u64);
    let mut rows = Vec::new();
    sampler::sample_fraction_into(&mut rng, block.rows(), fraction, &mut rows);
    let g = objective.minibatch_grad_delta(&block, &rows, &w);
    let entries = block.features().rows_nnz(&rows);
    let mut buf = BytesMut::new();
    encode_response_delta(ctx, part, &g, compress, &mut buf);
    buf.put_u64_le(entries);
    Ok(buf.into_vec())
}

// ---------------------------------------------------------------------------
// Routine: ASAGA telescoping difference
// ---------------------------------------------------------------------------

/// The wire form of one ASAGA submission. Sampling and per-row version
/// lookup happen **driver-side in `build`** — the version table must be
/// read at the submission instant (the sim's semantics; the whole reason
/// ASAGA is specified against `SimEngine`) — and the request ships the
/// rows, their versions, and one [`WirePlan`] per distinct version in
/// first-need order.
pub(crate) fn asaga_routine(
    rdd: &Rdd<Block>,
    bcast: &AsyncBcast<Vec<f64>>,
    objective: Objective,
    seed: u64,
    version: u64,
    fraction: f64,
    compress: CompressCfg,
) -> RemoteRoutine {
    let ops = rdd.ops();
    let handle = bcast.handle();
    let server_table = bcast.clone();
    let bcast_id = bcast.id();
    RemoteRoutine {
        routine: ROUTINE_ASAGA,
        build: Arc::new(move |mirror: &mut WorkerCtx, part: usize| {
            let data = ops.compute(part);
            let block = &data[0];
            // Same mirror sequence as the closure: current model, then one
            // `value_at` per sampled row (repeat versions resolve from the
            // mirror cache and ship nothing).
            let w_plan = handle.wire_plan_at(mirror, handle.version());
            let mut rng = sampler::derive_rng(seed, version, part as u64);
            let mut rows = Vec::new();
            sampler::sample_fraction_into(&mut rng, block.rows(), fraction, &mut rows);
            let mut row_versions = Vec::with_capacity(rows.len());
            let mut plans: Vec<WirePlan> = Vec::new();
            let mut seen: Vec<u64> = Vec::new();
            for &rr in &rows {
                let j = block.global_row(rr as usize);
                let vj = server_table.version_for_index(j);
                let plan = handle.wire_plan_at(mirror, vj);
                row_versions.push(vj);
                if !seen.contains(&vj) {
                    seen.push(vj);
                    plans.push(plan);
                }
            }
            let mut buf = BytesMut::new();
            encode_objective(&objective, &mut buf);
            buf.put_u64_le(bcast_id);
            encode_compress(&compress, &mut buf);
            buf.put_u64_le(part as u64);
            ship_block_if_new(mirror, part, block, &mut buf);
            encode_plan(&w_plan, &mut buf);
            put_u32s(&mut buf, &rows);
            put_u64s(&mut buf, &row_versions);
            buf.put_u64_le(plans.len() as u64);
            for p in &plans {
                encode_plan(p, &mut buf);
            }
            buf.into_vec()
        }),
        decode: Arc::new(move |bytes: &[u8]| {
            let mut r = Reader::new(bytes);
            let (delta, wire_bytes) = decode_response_delta(&mut r, compress)?;
            let indices = get_u64s(&mut r)?;
            let entries = r.u64()?;
            Ok(Box::new(DeltaMsg {
                delta,
                indices,
                entries,
                wire_bytes,
            }))
        }),
    }
}

fn asaga_handler(ctx: &mut WorkerCtx, request: &[u8]) -> Result<Vec<u8>, DecodeError> {
    let mut r = Reader::new(request);
    let objective = decode_objective(&mut r)?;
    let bcast_id = r.u64()?;
    let compress = decode_compress(&mut r)?;
    let part = r.u64()? as usize;
    let block = resolve_block(ctx, part, &mut r)?;
    let w_cur = decode_plan(&mut r)?.apply(ctx, bcast_id);
    let rows = get_u32s(&mut r)?;
    let row_versions = get_u64s(&mut r)?;
    if row_versions.len() != rows.len() {
        return Err(DecodeError::Invalid {
            at: r.at,
            what: "row versions not parallel to sampled rows",
        });
    }
    let nplans64 = r.u64()?;
    // A plan encoding is at least a tag byte and two u64s.
    let nplans = r.checked_count(nplans64, 17)?;
    let mut resolved: HashMap<u64, Arc<Vec<f64>>> = HashMap::with_capacity(nplans);
    for _ in 0..nplans {
        let plan = decode_plan(&mut r)?;
        let v = plan.version();
        resolved.insert(v, plan.apply(ctx, bcast_id));
    }
    // The closure's arithmetic, term for term.
    let scale = 1.0 / rows.len().max(1) as f64;
    let labels = block.labels();
    let features = block.features();
    let mut ids = Vec::with_capacity(rows.len());
    let mut coefs = Vec::with_capacity(rows.len());
    for (&rr, vj) in rows.iter().zip(&row_versions) {
        let i = rr as usize;
        if i >= block.rows() {
            return Err(DecodeError::Invalid {
                at: r.at,
                what: "sampled row out of block range",
            });
        }
        let j = block.global_row(i);
        let w_old = resolved.get(vj).ok_or(DecodeError::Invalid {
            at: r.at,
            what: "row version has no shipped plan",
        })?;
        let d_new = objective.dloss(features.row_dot(i, &w_cur), labels[i]);
        let d_old = objective.dloss(features.row_dot(i, w_old), labels[i]);
        coefs.push(scale * (d_new - d_old));
        ids.push(j);
    }
    let delta = match features {
        Matrix::Sparse(csr) => GradDelta::Sparse(csr.gather_axpy(&rows, &coefs)),
        Matrix::Dense(_) => {
            let mut d = vec![0.0; block.cols()];
            for (&rr, &a) in rows.iter().zip(coefs.iter()) {
                features.row_axpy(rr as usize, a, &mut d);
            }
            GradDelta::Dense(d)
        }
    };
    let entries = 2 * features.rows_nnz(&rows);
    let mut buf = BytesMut::new();
    encode_response_delta(ctx, part, &delta, compress, &mut buf);
    put_u64s(&mut buf, &ids);
    buf.put_u64_le(entries);
    Ok(buf.into_vec())
}

/// The routine table a worker process serves: everything this crate's
/// solvers submit. The `async_worker` binary is
/// `sparklet::remote::worker_main(worker_registry())`.
pub fn worker_registry() -> RoutineRegistry {
    let mut reg = RoutineRegistry::new();
    reg.register(ROUTINE_GRAD, grad_handler);
    reg.register(ROUTINE_ASAGA, asaga_handler);
    reg
}

#[cfg(test)]
mod tests {
    use super::*;
    use async_data::SynthSpec;

    fn blocks(dense: bool) -> Vec<Block> {
        let (d, _) = if dense {
            SynthSpec::dense("wire-d", 24, 6, 5).generate().unwrap()
        } else {
            SynthSpec::sparse("wire-s", 24, 40, 4, 5)
                .generate()
                .unwrap()
        };
        d.partition(3)
    }

    fn roundtrip_block(b: &Block) -> Block {
        let mut buf = BytesMut::new();
        encode_block(b, &mut buf);
        let bytes = buf.into_vec();
        let mut r = Reader::new(&bytes);
        let back = decode_block(&mut r).expect("decodes");
        assert_eq!(r.at, bytes.len(), "block decode consumed everything");
        back
    }

    #[test]
    fn blocks_roundtrip_bit_exactly() {
        for dense in [true, false] {
            for b in blocks(dense) {
                let back = roundtrip_block(&b);
                assert_eq!(back.rows(), b.rows());
                assert_eq!(back.cols(), b.cols());
                assert_eq!(back.part_id(), b.part_id());
                assert_eq!(back.total_rows(), b.total_rows());
                assert_eq!(back.labels(), b.labels());
                let w: Vec<f64> = (0..b.cols()).map(|i| 0.1 * (i as f64 + 1.0)).collect();
                for i in 0..b.rows() {
                    assert_eq!(back.global_row(i), b.global_row(i));
                    assert_eq!(
                        back.features().row_dot(i, &w).to_bits(),
                        b.features().row_dot(i, &w).to_bits()
                    );
                }
            }
        }
    }

    #[test]
    fn truncated_blocks_report_positions() {
        let b = &blocks(false)[0];
        let mut buf = BytesMut::new();
        encode_block(b, &mut buf);
        let bytes = buf.into_vec();
        for cut in [0, 5, 24, bytes.len() - 1] {
            let mut r = Reader::new(&bytes[..cut]);
            let err = decode_block(&mut r).expect_err("truncation must fail");
            assert!(err.at() <= cut, "error at {} past cut {cut}", err.at());
        }
    }

    #[test]
    fn plans_roundtrip() {
        let plans = vec![
            WirePlan::Cached {
                version: 7,
                evict_below: 3,
            },
            WirePlan::Snapshot {
                version: 9,
                values: Arc::new(vec![1.0, -2.5, 3.25]),
                evict_below: 9,
            },
            WirePlan::Patch {
                base: 4,
                version: 6,
                indices: vec![0, 3, 17],
                values: vec![0.5, -0.25, 8.0],
                evict_below: 4,
            },
        ];
        for p in &plans {
            let mut buf = BytesMut::new();
            encode_plan(p, &mut buf);
            let bytes = buf.into_vec();
            let mut r = Reader::new(&bytes);
            assert_eq!(&decode_plan(&mut r).expect("decodes"), p);
            assert_eq!(r.at, bytes.len());
        }
    }

    #[test]
    fn hostile_counts_cannot_size_allocations() {
        // A u32 list claiming u64::MAX entries with 4 bytes of body.
        let mut buf = BytesMut::new();
        buf.put_u64_le(u64::MAX);
        buf.put_u32_le(1);
        let bytes = buf.into_vec();
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            get_u32s(&mut r),
            Err(DecodeError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn objective_codec_is_lossless() {
        for o in [
            Objective::LeastSquares { lambda: 1e-3 },
            Objective::Logistic { lambda: 0.0 },
        ] {
            let mut buf = BytesMut::new();
            encode_objective(&o, &mut buf);
            let bytes = buf.into_vec();
            let mut r = Reader::new(&bytes);
            assert_eq!(decode_objective(&mut r).unwrap(), o);
        }
    }

    #[test]
    fn block_ships_once_per_incarnation() {
        let b = &blocks(true)[0];
        let mut mirror = WorkerCtx::new(0);
        let mut first = BytesMut::new();
        ship_block_if_new(&mut mirror, 0, b, &mut first);
        let mut second = BytesMut::new();
        ship_block_if_new(&mut mirror, 0, b, &mut second);
        assert!(first.len() > 1, "first task carries the block");
        assert_eq!(second.into_vec(), vec![0], "second task ships nothing");
        // The worker side accepts both forms against its own cache.
        let mut ctx = WorkerCtx::new(0);
        let first = first.into_vec();
        let got = resolve_block(&mut ctx, 0, &mut Reader::new(&first)).unwrap();
        assert_eq!(got.rows(), b.rows());
        let cached = resolve_block(&mut ctx, 0, &mut Reader::new(&[0])).unwrap();
        assert_eq!(cached.rows(), b.rows());
        // A fresh incarnation without the shipment is a protocol error.
        let mut fresh = WorkerCtx::new(1);
        assert!(resolve_block(&mut fresh, 0, &mut Reader::new(&[0])).is_err());
    }

    #[test]
    fn quantized_patch_plans_roundtrip() {
        let plans = vec![
            WirePlan::QPatch {
                base: 11,
                version: 13,
                indices: vec![2, 9, 40],
                scale: 3.5,
                codes: PatchCodes::I8(vec![-127, 0, 64]),
                evict_below: 11,
            },
            WirePlan::QPatch {
                base: 5,
                version: 6,
                indices: vec![0, 1],
                scale: 0.0,
                codes: PatchCodes::F16(vec![0x3c00, 0xbc00]),
                evict_below: 2,
            },
        ];
        for p in &plans {
            let mut buf = BytesMut::new();
            encode_plan(p, &mut buf);
            let bytes = buf.into_vec();
            let mut r = Reader::new(&bytes);
            assert_eq!(&decode_plan(&mut r).expect("decodes"), p);
            assert_eq!(r.at, bytes.len(), "plan decode consumed everything");
        }
    }

    #[test]
    fn hostile_quantized_patches_are_rejected_with_positions() {
        // A well-formed frame truncated at every prefix fails with an
        // error positioned at or before the cut.
        let p = WirePlan::QPatch {
            base: 1,
            version: 2,
            indices: vec![3, 4],
            scale: 1.0,
            codes: PatchCodes::F16(vec![0x3800, 0x4200]),
            evict_below: 0,
        };
        let mut buf = BytesMut::new();
        encode_plan(&p, &mut buf);
        let bytes = buf.into_vec();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            let err = decode_plan(&mut r).expect_err("truncation must fail");
            assert!(err.at() <= cut, "error at {} past cut {cut}", err.at());
        }

        // Tag 3 with a non-finite scale is invalid.
        let mut buf = BytesMut::new();
        buf.put_u8(3);
        buf.put_u64_le(1);
        buf.put_u64_le(2);
        buf.put_u64_le(0);
        buf.put_f64_le(f64::NAN);
        buf.put_u8(1);
        buf.put_u64_le(0);
        let bytes = buf.into_vec();
        assert!(matches!(
            decode_plan(&mut Reader::new(&bytes)),
            Err(DecodeError::Invalid { .. })
        ));

        // Tag 3 declaring the Exact quant is a protocol contradiction —
        // exact diffs travel as tag-2 plain patches.
        let mut buf = BytesMut::new();
        buf.put_u8(3);
        buf.put_u64_le(1);
        buf.put_u64_le(2);
        buf.put_u64_le(0);
        buf.put_f64_le(1.0);
        buf.put_u8(0);
        buf.put_u64_le(0);
        let bytes = buf.into_vec();
        assert!(matches!(
            decode_plan(&mut Reader::new(&bytes)),
            Err(DecodeError::Invalid { .. })
        ));

        // A hostile count cannot size the allocation.
        let mut buf = BytesMut::new();
        buf.put_u8(3);
        buf.put_u64_le(1);
        buf.put_u64_le(2);
        buf.put_u64_le(0);
        buf.put_f64_le(1.0);
        buf.put_u8(1);
        buf.put_u64_le(u64::MAX);
        let bytes = buf.into_vec();
        assert!(matches!(
            decode_plan(&mut Reader::new(&bytes)),
            Err(DecodeError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn compress_cfg_codec_roundtrips_and_rejects_k_zero() {
        for c in [
            CompressCfg::Off,
            CompressCfg::TopK {
                k: 16,
                quant: Quant::Exact,
            },
            CompressCfg::TopK {
                k: 1,
                quant: Quant::I8,
            },
            CompressCfg::TopK {
                k: 1 << 20,
                quant: Quant::F16,
            },
        ] {
            let mut buf = BytesMut::new();
            encode_compress(&c, &mut buf);
            let bytes = buf.into_vec();
            let mut r = Reader::new(&bytes);
            assert_eq!(decode_compress(&mut r).expect("decodes"), c);
            assert_eq!(r.at, bytes.len());
        }

        // k = 0 would ship empty deltas forever; the decoder refuses it
        // so a hostile frame cannot wedge a worker.
        let mut buf = BytesMut::new();
        buf.put_u8(1);
        buf.put_u64_le(0);
        buf.put_u8(1);
        let bytes = buf.into_vec();
        assert!(matches!(
            decode_compress(&mut Reader::new(&bytes)),
            Err(DecodeError::Invalid { .. })
        ));

        // Unknown cfg tags are rejected, not silently mapped to Off.
        assert!(matches!(
            decode_compress(&mut Reader::new(&[9])),
            Err(DecodeError::BadTag { .. })
        ));
    }

    #[test]
    fn worker_ef_state_persists_per_incarnation() {
        let mut ctx = WorkerCtx::new(0);
        let ef = worker_ef(&mut ctx, 2, 4);
        let g = GradDelta::Dense(vec![0.0, 0.5, 0.0, 2.0]);
        ef.lock().unwrap().compress(&g, 1, Quant::Exact);
        // Same incarnation, same partition: the residual survives across
        // lookups (top-1 shipped coordinate 3; coordinate 1 stays behind).
        let again = worker_ef(&mut ctx, 2, 4);
        assert_eq!(again.lock().unwrap().residual()[1], 0.5);
        // A different partition gets its own accumulator.
        let other = worker_ef(&mut ctx, 3, 4);
        assert_eq!(other.lock().unwrap().residual()[1], 0.0);
    }
}
