//! Property tests for the sharded server.
//!
//! Two contracts, straight from the absorber's documentation:
//!
//! 1. **Bit-identity** — with `absorb_batch = 1`, a run absorbing on `N`
//!    server threads reproduces the single-threaded server **bit-exactly**
//!    for every solver, dataset storage (sparse and dense), barrier, shard
//!    count, and churn schedule: shards are disjoint and every coordinate
//!    sees the serial f64 operation sequence.
//! 2. **Value-equivalence of fused waves** — folding a batch of deltas and
//!    applying it with one fused shrink+axpy pass per shard equals the
//!    delta-at-a-time application in exact arithmetic; in f64 the two
//!    differ only by rounding reorder, bounded here at 1e-9 relative.
//!    End-to-end, `absorb_batch > 1` runs (including under churn) must
//!    complete their budget and descend the objective.

use async_cluster::{ChaosCfg, ChaosSchedule, ClusterSpec, CommModel, DelayModel, VDur, VTime};
use async_core::{AsyncContext, BarrierFilter};
use async_data::{Dataset, SynthSpec};
use async_linalg::{GradDelta, SparseVec};
use async_optim::{
    Asaga, Asgd, AsyncMsgd, AsyncSolver, Objective, RunReport, ShardedAbsorber, SolverCfg,
};
use proptest::prelude::*;

const WORKERS: usize = 4;

fn quiet_spec() -> ClusterSpec {
    ClusterSpec::homogeneous(WORKERS, DelayModel::None)
        .with_comm(CommModel::free())
        .with_sched_overhead(VDur::ZERO)
}

fn sparse_dataset() -> Dataset {
    SynthSpec::sparse("shard-prop-sp", 120, 400, 12, 7)
        .generate()
        .unwrap()
        .0
}

fn dense_dataset() -> Dataset {
    SynthSpec::dense("shard-prop-d", 120, 24, 5)
        .generate()
        .unwrap()
        .0
}

fn base_cfg(barrier: BarrierFilter, server_threads: usize, absorb_batch: usize) -> SolverCfg {
    SolverCfg {
        step: 0.05,
        batch_fraction: 0.25,
        barrier,
        max_updates: 60,
        seed: 11,
        server_threads,
        absorb_batch,
        ..SolverCfg::default()
    }
}

fn run_solver(which: u8, d: &Dataset, cfg: &SolverCfg, chaos: Option<&ChaosSchedule>) -> RunReport {
    let mut ctx = AsyncContext::sim(quiet_spec());
    if let Some(c) = chaos {
        ctx.driver_mut().install_chaos(c);
    }
    let objective = Objective::Logistic { lambda: 1e-3 };
    match which % 3 {
        0 => Asgd::new(objective).run(&mut ctx, d, cfg),
        1 => AsyncMsgd::new(objective).run(&mut ctx, d, cfg),
        _ => Asaga::new(objective).run(&mut ctx, d, cfg),
    }
}

fn bits(w: &[f64]) -> Vec<u64> {
    w.iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn sharded_absorption_is_bit_identical_to_serial(
        threads in 2usize..9,
        solver in 0u8..3,
        slack in 0u64..3,
        sparse in 0u8..2,
    ) {
        // Random shard counts × solver × barrier × storage: the N-thread
        // server with absorb_batch = 1 must reproduce the serial model to
        // the last bit, along with every report statistic.
        let d = if sparse == 1 { sparse_dataset() } else { dense_dataset() };
        let barrier = BarrierFilter::Ssp { slack };
        let serial = run_solver(solver, &d, &base_cfg(barrier.clone(), 1, 1), None);
        let sharded = run_solver(solver, &d, &base_cfg(barrier, threads, 1), None);
        prop_assert_eq!(bits(&serial.final_w), bits(&sharded.final_w));
        prop_assert_eq!(serial.final_objective.to_bits(), sharded.final_objective.to_bits());
        prop_assert_eq!(serial.updates, sharded.updates);
        prop_assert_eq!(serial.tasks_completed, sharded.tasks_completed);
        prop_assert_eq!(serial.bytes_shipped, sharded.bytes_shipped);
        prop_assert_eq!(serial.worker_clocks, sharded.worker_clocks);
    }

    #[test]
    fn sharded_absorption_is_bit_identical_under_churn(
        threads in 2usize..7,
        solver in 0u8..3,
        chaos_seed in 0u64..100_000,
    ) {
        // Kills, revivals, and joins change the delta mix mid-run; the
        // bit-identity contract must hold regardless.
        let d = sparse_dataset();
        let chaos = ChaosSchedule::random(
            chaos_seed,
            WORKERS,
            VTime::from_micros(100),
            &ChaosCfg { events: 6, ..ChaosCfg::default() },
        );
        let serial = run_solver(solver, &d, &base_cfg(BarrierFilter::Asp, 1, 1), Some(&chaos));
        let sharded =
            run_solver(solver, &d, &base_cfg(BarrierFilter::Asp, threads, 1), Some(&chaos));
        prop_assert_eq!(bits(&serial.final_w), bits(&sharded.final_w));
        prop_assert_eq!(serial.updates, sharded.updates);
        prop_assert_eq!(serial.worker_clocks, sharded.worker_clocks);
    }

    #[test]
    fn fused_waves_match_sequential_application_within_1e9(
        threads in 1usize..6,
        wave_len in 2usize..6,
        lambda_idx in 0usize..3,
        seed in 0u64..10_000,
    ) {
        // The fold-then-apply pass vs the same deltas applied one at a
        // time with the serial kernels: exact in ℝ, ≤ 1e-9 relative in
        // f64 across random sparse/dense mixes and damp factors.
        let lambda = [0.0, 1e-3, 1e-2][lambda_idx];
        let dim = 80usize;
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64 - 1.0
        };
        let deltas: Vec<GradDelta> = (0..wave_len)
            .map(|k| {
                if k % 2 == 0 {
                    let pairs: Vec<(u32, f64)> = (0..8)
                        .map(|j| ((j * 9 + k as u32 * 3) % dim as u32, next()))
                        .collect();
                    GradDelta::Sparse(SparseVec::from_pairs(pairs, dim).unwrap())
                } else {
                    GradDelta::Dense((0..dim).map(|_| next() * 0.1).collect())
                }
            })
            .collect();
        let damps: Vec<f64> = (0..wave_len).map(|k| 1.0 / (1.0 + k as f64)).collect();
        let mut batched: Vec<f64> = (0..dim).map(|_| next()).collect();
        let mut sequential = batched.clone();
        let mut ab = ShardedAbsorber::new(dim, threads);
        ab.asgd_wave(&mut batched, wave_len, |k| &deltas[k], &damps, 0.1, lambda);
        let mut serial = ShardedAbsorber::new(dim, 1);
        for (k, g) in deltas.iter().enumerate() {
            serial.asgd_step(&mut sequential, g, 0.1 * damps[k], lambda);
        }
        for (b, s) in batched.iter().zip(&sequential) {
            prop_assert!(
                (b - s).abs() <= 1e-9 * s.abs().max(1.0),
                "lambda={} : {} vs {}", lambda, b, s
            );
        }
    }

    #[test]
    fn batched_runs_complete_and_descend_under_churn(
        batch in 2usize..5,
        threads in 1usize..5,
        solver in 0u8..3,
        chaos_seed in 0u64..100_000,
    ) {
        // absorb_batch > 1 is value-equivalent, not bit-identical — but it
        // must still honor the update budget, converge below the ln 2
        // start, and keep every report statistic coherent under churn.
        let d = sparse_dataset();
        let chaos = ChaosSchedule::random(
            chaos_seed,
            WORKERS,
            VTime::from_micros(100),
            &ChaosCfg { events: 5, ..ChaosCfg::default() },
        );
        let r = run_solver(
            solver,
            &d,
            &base_cfg(BarrierFilter::Asp, threads, batch),
            Some(&chaos),
        );
        prop_assert!(r.updates <= 60);
        prop_assert!(r.tasks_completed >= r.updates);
        prop_assert!(r.final_objective.is_finite());
        if r.updates == 60 {
            prop_assert!(
                r.final_objective < std::f64::consts::LN_2,
                "batched run must descend: {}", r.final_objective
            );
        }
    }
}

/// A singleton-wave configuration (one worker, BSP) can never batch more
/// than one ready result, so `absorb_batch > 1` degenerates to the exact
/// per-delta path and must stay bit-identical to the serial server.
#[test]
fn degenerate_batches_stay_bit_identical() {
    let d = sparse_dataset();
    let spec = ClusterSpec::homogeneous(1, DelayModel::None)
        .with_comm(CommModel::free())
        .with_sched_overhead(VDur::ZERO);
    let objective = Objective::Logistic { lambda: 0.0 };
    let run = |batch: usize, threads: usize| {
        let mut ctx = AsyncContext::sim(spec.clone());
        let cfg = SolverCfg {
            max_updates: 40,
            barrier: BarrierFilter::Bsp,
            server_threads: threads,
            absorb_batch: batch,
            ..base_cfg(BarrierFilter::Bsp, threads, batch)
        };
        Asgd::new(objective).run(&mut ctx, &d, &cfg)
    };
    let serial = run(1, 1);
    let batched = run(4, 3);
    assert_eq!(bits(&serial.final_w), bits(&batched.final_w));
    assert_eq!(serial.updates, batched.updates);
}
