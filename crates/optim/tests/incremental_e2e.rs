//! End-to-end equivalence of the incremental (version-diffed) broadcast:
//! an ASGD run with the ring enabled must produce **bit-identical** models
//! and traces to the dense-full-broadcast run — only the bytes on the wire
//! may differ — across pin gaps (stragglers), ring evictions (tiny rings),
//! and churn-revived workers forced onto the full-snapshot fallback.
//!
//! All comparisons run with free communication so the simulator's event
//! order cannot depend on message sizes; that isolates exactly the claim
//! under test (the *values* are unaffected by the wire representation).

use async_cluster::{ChaosCfg, ChaosSchedule, ClusterSpec, CommModel, DelayModel, VDur, VTime};
use async_core::{AsyncContext, BarrierFilter};
use async_data::{Dataset, SynthSpec};
use async_optim::{Asgd, AsyncSolver, Objective, RunReport, SolverCfg};
use proptest::prelude::*;

fn sparse_dataset(seed: u64) -> Dataset {
    let (base, w_star) = SynthSpec::sparse("incr-e2e", 240, 3_000, 16, seed)
        .generate()
        .expect("synthetic generation");
    let labels: Vec<f64> = (0..base.rows())
        .map(|i| {
            if base.features().row_dot(i, &w_star) >= 0.0 {
                1.0
            } else {
                -1.0
            }
        })
        .collect();
    Dataset::new("incr-e2e-pm1", base.features().clone(), labels).expect("relabel")
}

fn ctx(workers: usize, delay: DelayModel) -> AsyncContext {
    AsyncContext::sim(
        ClusterSpec::homogeneous(workers, delay)
            .with_comm(CommModel::free())
            .with_sched_overhead(VDur::ZERO),
    )
}

/// ASGD with no ridge term: the per-version change support is exactly the
/// sparse gradient's support, which is what makes version diffs exact.
fn run(
    dataset: &Dataset,
    delay: DelayModel,
    ring: usize,
    chaos: Option<&ChaosSchedule>,
) -> RunReport {
    let mut c = ctx(4, delay);
    if let Some(schedule) = chaos {
        c.driver_mut().install_chaos(schedule);
    }
    let cfg = SolverCfg {
        step: 0.4,
        batch_fraction: 0.15,
        barrier: BarrierFilter::Asp,
        max_updates: 120,
        eval_every: 30,
        seed: 7,
        bcast_ring: ring,
        ..SolverCfg::default()
    };
    Asgd::new(Objective::Logistic { lambda: 0.0 }).run(&mut c, dataset, &cfg)
}

fn assert_value_identical(dense: &RunReport, incr: &RunReport) {
    assert_eq!(dense.final_w, incr.final_w, "models must be bit-identical");
    assert_eq!(
        dense.final_objective.to_bits(),
        incr.final_objective.to_bits()
    );
    assert_eq!(dense.updates, incr.updates);
    assert_eq!(dense.tasks_completed, incr.tasks_completed);
    assert_eq!(dense.max_staleness, incr.max_staleness);
    assert_eq!(dense.wall_clock, incr.wall_clock);
    assert_eq!(dense.trace.points(), incr.trace.points());
    assert_eq!(dense.grad_entries, incr.grad_entries);
}

#[test]
fn incremental_matches_dense_and_saves_bytes() {
    let d = sparse_dataset(11);
    let dense = run(&d, DelayModel::None, 0, None);
    let incr = run(&d, DelayModel::None, 16, None);
    assert_value_identical(&dense, &incr);
    assert!(
        incr.bytes_shipped * 2 < dense.bytes_shipped,
        "version diffs must at least halve the shipped bytes here: {} vs {}",
        incr.bytes_shipped,
        dense.bytes_shipped
    );
}

#[test]
fn straggler_pin_gaps_stay_exact() {
    // A 9x straggler piles up staleness, so fast workers span multi-version
    // gaps and the straggler occasionally outruns the ring.
    let d = sparse_dataset(13);
    let delay = DelayModel::ControlledDelay {
        worker: 3,
        intensity: 9.0,
    };
    for ring in [1, 3, 32] {
        let dense = run(&d, delay.clone(), 0, None);
        let incr = run(&d, delay.clone(), ring, None);
        assert_value_identical(&dense, &incr);
        assert!(incr.bytes_shipped <= dense.bytes_shipped);
    }
}

#[test]
fn churn_revived_workers_fall_back_and_stay_exact() {
    // Kills wipe worker caches; revived executors have no patch base and
    // must take the full-snapshot fallback, then re-enter the diff path.
    let d = sparse_dataset(17);
    let chaos = ChaosSchedule::new()
        .kill(VTime::from_micros(300_000), 1)
        .revive(VTime::from_micros(900_000), 1)
        .kill(VTime::from_micros(1_500_000), 2)
        .revive(VTime::from_micros(2_000_000), 2)
        .join(VTime::from_micros(2_400_000));
    let dense = run(&d, DelayModel::None, 0, Some(&chaos));
    let incr = run(&d, DelayModel::None, 8, Some(&chaos));
    assert_value_identical(&dense, &incr);
    assert!(incr.bytes_shipped <= dense.bytes_shipped);
}

#[test]
fn ridge_objective_forces_dense_supports_but_stays_exact() {
    // With λ > 0 every update touches every coordinate, so the ring only
    // ever records dense supports and resolution always falls back — the
    // run must still be value-identical (and ship the same bytes).
    let d = sparse_dataset(19);
    let mut c0 = ctx(4, DelayModel::None);
    let mut c1 = ctx(4, DelayModel::None);
    let mk = |ring| SolverCfg {
        step: 0.4,
        batch_fraction: 0.15,
        barrier: BarrierFilter::Asp,
        max_updates: 60,
        seed: 7,
        bcast_ring: ring,
        ..SolverCfg::default()
    };
    let dense = Asgd::new(Objective::Logistic { lambda: 1e-3 }).run(&mut c0, &d, &mk(0));
    let incr = Asgd::new(Objective::Logistic { lambda: 1e-3 }).run(&mut c1, &d, &mk(16));
    assert_value_identical(&dense, &incr);
    assert_eq!(dense.bytes_shipped, incr.bytes_shipped);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn incremental_is_bit_identical_under_arbitrary_churn(
        chaos_seed in 0u64..10_000,
        data_seed in 0u64..1_000,
        ring in 1usize..24,
        intensity in 0.0..6.0f64,
    ) {
        let d = sparse_dataset(data_seed);
        let delay = DelayModel::ControlledDelay { worker: 0, intensity };
        // A random membership-churn script over the run's horizon: kills,
        // revivals, and joins at arbitrary instants.
        let chaos = ChaosSchedule::random(
            chaos_seed,
            4,
            VTime::from_micros(3_000_000),
            &ChaosCfg::default(),
        );
        let dense = run(&d, delay.clone(), 0, Some(&chaos));
        let incr = run(&d, delay, ring, Some(&chaos));
        prop_assert_eq!(&dense.final_w, &incr.final_w);
        prop_assert_eq!(dense.trace.points(), incr.trace.points());
        prop_assert_eq!(dense.updates, incr.updates);
        prop_assert!(incr.bytes_shipped <= dense.bytes_shipped);
    }
}
