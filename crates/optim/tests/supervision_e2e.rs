//! Wire-level fault-injection acceptance for the supervision layer: every
//! solver × barrier cell runs against loopback remote workers while a
//! seeded [`FaultPlan`] drops, delays, duplicates, and tears frames on the
//! live connections — unscripted failures the engine only survives through
//! heartbeats, task deadlines, bounded retry, and supervised respawn.
//!
//! The contract mirrors `remote_e2e`: the deterministic simulator is the
//! oracle, and a supervised run under faults must (a) spend its full
//! update budget and (b) land at a final loss that agrees with the clean
//! sim run. A supervision-off cell demonstrates the counterfactual —
//! the same fault family visibly loses tasks and strands the run short.

use std::sync::Arc;
use std::time::Duration;

use async_cluster::{ClusterSpec, CommModel, DelayModel, VDur};
use async_core::{AsyncContext, BarrierFilter, DegradePolicy};
use async_data::{Dataset, SynthSpec};
use async_linalg::ParallelismCfg;
use async_optim::{Asaga, Asgd, AsyncMsgd, AsyncSolver, Objective, SolverCfg};
use sparklet::{Driver, EngineBuilder, FaultPlan, SuperviseCfg};

const WORKERS: usize = 4;

fn quiet_spec() -> ClusterSpec {
    ClusterSpec::homogeneous(WORKERS, DelayModel::None)
        .with_comm(CommModel::free())
        .with_sched_overhead(VDur::ZERO)
}

fn dataset() -> Dataset {
    SynthSpec::dense("supervision-e2e", 160, 10, 3)
        .generate()
        .unwrap()
        .0
}

fn cfg(barrier: BarrierFilter, budget: u64, retry: u32) -> SolverCfg {
    SolverCfg::builder()
        .step(0.04)
        .batch_fraction(0.25)
        .barrier(barrier)
        .max_updates(budget)
        .seed(11)
        .retry_lost(retry)
        .build()
        .unwrap()
}

/// A loopback remote context with the full supervision stack on:
/// heartbeats every 3 ms, a 120 ms liveness deadline, a 60 ms per-task
/// deadline, the given fault plan on the wire, and a driver supervisor
/// respawning dead workers with fast exponential backoff.
fn supervised_ctx(fault: FaultPlan) -> AsyncContext {
    let engine = EngineBuilder::remote()
        .spec(quiet_spec())
        .time_scale(0.0)
        .loopback_workers(Arc::new(async_optim::worker_registry))
        .heartbeat(Duration::from_millis(3))
        .liveness(Duration::from_millis(120))
        .task_deadline(Duration::from_millis(60))
        .fault(fault)
        .build()
        .expect("loopback workers need no binary");
    let mut ctx = AsyncContext::new(Driver::from_engine(engine));
    ctx.driver_mut().supervise(SuperviseCfg {
        backoff_base: VDur::from_millis(4),
        backoff_max: VDur::from_millis(40),
        // Fault-heavy cells kill workers often and young; keep the
        // crash-loop breaker out of the way of legitimate recovery.
        max_crashes: 50,
        crash_window: VDur::from_millis(50),
        ..SuperviseCfg::default()
    });
    ctx
}

/// A loopback remote context with NO supervision: no heartbeats, no
/// deadlines, no supervisor — only the fault plan.
fn unsupervised_ctx(fault: FaultPlan) -> AsyncContext {
    let engine = EngineBuilder::remote()
        .spec(quiet_spec())
        .time_scale(0.0)
        .loopback_workers(Arc::new(async_optim::worker_registry))
        .fault(fault)
        .build()
        .expect("loopback workers need no binary");
    AsyncContext::new(Driver::from_engine(engine))
}

type SolverFactory = Box<dyn Fn() -> Box<dyn AsyncSolver>>;

fn solvers(objective: Objective) -> Vec<(&'static str, SolverFactory)> {
    vec![
        ("asgd", Box::new(move || Box::new(Asgd::new(objective)))),
        ("asaga", Box::new(move || Box::new(Asaga::new(objective)))),
        (
            "async-msgd",
            Box::new(move || Box::new(AsyncMsgd::new(objective).with_momentum(0.5))),
        ),
    ]
}

/// The three fault mixes the grid rotates through. Every mix is survivable
/// only with supervision on: dropped frames need the task deadline,
/// torn/reset streams need respawn + retry, and jitter needs the epoch and
/// duplicate guards.
fn fault_mixes(seed: u64) -> Vec<(&'static str, FaultPlan)> {
    vec![
        (
            "drop",
            FaultPlan {
                seed,
                drop: 0.04,
                ..FaultPlan::none()
            },
        ),
        (
            "jitter",
            FaultPlan {
                seed,
                delay: 0.3,
                max_delay: Duration::from_micros(300),
                duplicate: 0.05,
                ..FaultPlan::none()
            },
        ),
        (
            "tear",
            FaultPlan {
                seed,
                truncate: 0.02,
                reset: 0.02,
                ..FaultPlan::none()
            },
        ),
    ]
}

#[test]
fn supervised_grid_survives_faults_and_agrees_with_clean_sim() {
    let d = dataset();
    let objective = Objective::LeastSquares { lambda: 1e-3 };
    let baseline = objective.optimum(ParallelismCfg::sequential(), &d).unwrap();
    let f0 = objective.full_objective(ParallelismCfg::sequential(), &d, &vec![0.0; d.cols()]);
    let gap0 = f0 - baseline;
    let budget = 120;
    let barriers = [
        ("asp", BarrierFilter::Asp),
        ("bsp", BarrierFilter::Bsp),
        ("ssp", BarrierFilter::Ssp { slack: 2 }),
    ];
    for (si, (sname, make)) in solvers(objective).iter().enumerate() {
        for (bi, (bname, barrier)) in barriers.iter().enumerate() {
            // Clean oracle: the deterministic simulator, same cfg.
            let mut sim_ctx = AsyncContext::sim(quiet_spec());
            let sim = make().run(&mut sim_ctx, &d, &cfg(barrier.clone(), budget, 0));
            assert_eq!(sim.updates, budget, "{sname}/{bname}: sim spends budget");
            let sim_gap = sim.final_objective - baseline;

            // Faulty cell: rotate the mix so all three appear across the
            // grid without tripling it; seed per cell for coverage.
            let mixes = fault_mixes(0xFA17 + (si * 3 + bi) as u64);
            let (mname, fault) = &mixes[(si + bi) % mixes.len()];
            let mut ctx = supervised_ctx(fault.clone());
            let r = make().run(&mut ctx, &d, &cfg(barrier.clone(), budget, 3));
            assert_eq!(
                r.updates, budget,
                "{sname}/{bname}/{mname}: a supervised run must spend its \
                 full budget despite wire faults"
            );
            assert_eq!(
                r.lost_tasks, 0,
                "{sname}/{bname}/{mname}: supervision converts losses into \
                 retries (retried {})",
                r.retried_tasks
            );
            let gap = r.final_objective - baseline;
            assert!(
                gap < 0.2 * gap0,
                "{sname}/{bname}/{mname}: faulty run must converge: \
                 gap {gap} / {gap0}"
            );
            assert!(
                (sim_gap - gap).abs() <= 0.15 * gap0,
                "{sname}/{bname}/{mname}: faulty gap {gap} disagrees with \
                 clean sim gap {sim_gap} (gap0 {gap0})"
            );
        }
    }
}

#[test]
fn unscripted_hang_is_detected_and_the_task_reassigned() {
    // Worker 1 hangs without warning after its 5th response: its beat
    // thread goes silent and its in-flight task never answers. Only the
    // liveness deadline notices; the supervisor respawns it and the retry
    // layer re-places the stranded task. No fault probabilities — the hang
    // is the single unscripted event.
    let d = dataset();
    let objective = Objective::LeastSquares { lambda: 1e-3 };
    let baseline = objective.optimum(ParallelismCfg::sequential(), &d).unwrap();
    let f0 = objective.full_objective(ParallelismCfg::sequential(), &d, &vec![0.0; d.cols()]);
    let fault = FaultPlan {
        hang_worker: Some(1),
        hang_after: 5,
        ..FaultPlan::none()
    };
    let budget = 120;
    let mut ctx = supervised_ctx(fault);
    let r = Asgd::new(objective).run(&mut ctx, &d, &cfg(BarrierFilter::Asp, budget, 3));
    assert_eq!(r.updates, budget, "the run survives the silent hang");
    assert_eq!(r.lost_tasks, 0, "the stranded task was re-placed");
    assert!(
        r.retried_tasks >= 1,
        "the hung worker's in-flight task must have been retried"
    );
    assert!(
        ctx.driver().supervised_respawns() >= 1,
        "the supervisor must have respawned the hung worker"
    );
    let gap = r.final_objective - baseline;
    assert!(
        gap < 0.2 * (f0 - baseline),
        "hang-recovery run should still converge: gap {gap}"
    );
}

#[test]
fn fail_fast_policy_halts_on_the_first_death() {
    // Reset-heavy faults with FailFast: the first torn connection ends the
    // run at the next wave boundary instead of degrading.
    let d = dataset();
    let objective = Objective::LeastSquares { lambda: 1e-3 };
    let fault = FaultPlan {
        seed: 0xDEAD,
        reset: 0.1,
        ..FaultPlan::none()
    };
    let budget = 400;
    let mut ctx = supervised_ctx(fault);
    let cfg = SolverCfg::builder()
        .step(0.04)
        .batch_fraction(0.25)
        .max_updates(budget)
        .seed(11)
        .degrade(DegradePolicy::FailFast)
        .build()
        .unwrap();
    let r = Asgd::new(objective).run(&mut ctx, &d, &cfg);
    assert!(
        r.updates < budget,
        "FailFast must halt early under tears (got {} updates)",
        r.updates
    );
}

#[test]
fn without_supervision_the_same_faults_lose_tasks() {
    // The counterfactual cell: identical tear faults, but no heartbeats,
    // no deadlines, no supervisor, no retry. Torn connections permanently
    // kill workers and their in-flight tasks are gone — the run visibly
    // bleeds tasks and cannot spend a long budget.
    let d = dataset();
    let objective = Objective::LeastSquares { lambda: 1e-3 };
    let fault = FaultPlan {
        seed: 0x0FF,
        reset: 0.05,
        truncate: 0.02,
        ..FaultPlan::none()
    };
    let budget = 600;
    let mut ctx = unsupervised_ctx(fault);
    let r = Asgd::new(objective).run(&mut ctx, &d, &cfg(BarrierFilter::Asp, budget, 0));
    assert!(
        r.lost_tasks >= 1,
        "unsupervised tears must visibly lose tasks"
    );
    assert!(
        r.updates < budget,
        "with every worker torn down and nothing respawning them, the run \
         cannot spend its budget (got {})",
        r.updates
    );
    assert_eq!(r.retried_tasks, 0, "retry is off in the counterfactual");
}
