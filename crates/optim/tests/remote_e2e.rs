//! Cross-process acceptance for the remote engine: every solver runs
//! against real worker OS processes over loopback TCP and must land where
//! the deterministic simulator lands. This mirrors the sim-vs-threaded
//! agreement suite — the simulator stays the byte-gated oracle, and the
//! remote backend has to reproduce its convergence behaviour through the
//! wire protocol (shipped blocks, `WirePlan` model resolution, worker-side
//! minibatch recompute).

use std::sync::Arc;

use async_cluster::{ChaosSchedule, ClusterSpec, CommModel, DelayModel, VDur, VTime};
use async_core::{AsyncContext, BarrierFilter};
use async_data::{Dataset, SynthSpec};
use async_linalg::ParallelismCfg;
use async_optim::{Asaga, Asgd, AsyncMsgd, AsyncSolver, Objective, SolverCfg};
use sparklet::{Driver, EngineBuilder};

const WORKERS: usize = 4;

fn quiet_spec() -> ClusterSpec {
    ClusterSpec::homogeneous(WORKERS, DelayModel::None)
        .with_comm(CommModel::free())
        .with_sched_overhead(VDur::ZERO)
}

fn dataset() -> Dataset {
    SynthSpec::dense("remote-e2e", 160, 10, 3)
        .generate()
        .unwrap()
        .0
}

fn cfg(max_updates: u64, seed: u64) -> SolverCfg {
    SolverCfg::builder()
        .step(0.04)
        .batch_fraction(0.25)
        .barrier(BarrierFilter::Asp)
        .max_updates(max_updates)
        .seed(seed)
        .build()
        .unwrap()
}

/// A remote context over real worker processes: the `async_worker` binary
/// built from this crate, one process per worker, loopback TCP.
fn remote_ctx(time_scale: f64, chaos: Option<ChaosSchedule>) -> AsyncContext {
    let mut b = EngineBuilder::remote()
        .spec(quiet_spec())
        .time_scale(time_scale)
        .worker_bin(env!("CARGO_BIN_EXE_async_worker"));
    if let Some(s) = chaos {
        b = b.chaos(s);
    }
    let engine = b.build().expect("spawn workers over loopback TCP");
    AsyncContext::new(Driver::from_engine(engine))
}

#[test]
fn sim_and_remote_agree_on_final_loss_for_every_solver() {
    let d = dataset();
    let objective = Objective::LeastSquares { lambda: 1e-3 };
    let baseline = objective.optimum(ParallelismCfg::sequential(), &d).unwrap();
    let f0 = objective.full_objective(ParallelismCfg::sequential(), &d, &vec![0.0; d.cols()]);
    let gap0 = f0 - baseline;
    type SolverFactory = Box<dyn Fn() -> Box<dyn AsyncSolver>>;
    let solvers: Vec<(&str, SolverFactory)> = vec![
        ("asgd", Box::new(move || Box::new(Asgd::new(objective)))),
        ("asaga", Box::new(move || Box::new(Asaga::new(objective)))),
        (
            "async-msgd",
            Box::new(move || Box::new(AsyncMsgd::new(objective).with_momentum(0.5))),
        ),
    ];
    let budget = 150;
    for (name, make) in &solvers {
        let mut sim_ctx = AsyncContext::sim(quiet_spec());
        let sim = make().run(&mut sim_ctx, &d, &cfg(budget, 11));
        let mut rem_ctx = remote_ctx(0.0, None);
        let rem = make().run(&mut rem_ctx, &d, &cfg(budget, 11));
        assert_eq!(sim.updates, budget, "{name}: sim must spend the budget");
        assert_eq!(rem.updates, budget, "{name}: remote must spend the budget");
        let sim_gap = sim.final_objective - baseline;
        let rem_gap = rem.final_objective - baseline;
        // Both engines close the optimality gap, and they agree on where
        // the run lands (stochastic completion orders differ, so exact
        // bit-equality is a sim-only property — agreement is the contract).
        assert!(sim_gap < 0.15 * gap0, "{name}: sim gap {sim_gap} / {gap0}");
        assert!(
            rem_gap < 0.15 * gap0,
            "{name}: remote gap {rem_gap} / {gap0}"
        );
        assert!(
            (sim_gap - rem_gap).abs() <= 0.10 * gap0,
            "{name}: sim gap {sim_gap} and remote gap {rem_gap} disagree (gap0 {gap0})"
        );
    }
}

#[test]
fn remote_chaos_kills_real_processes_and_recovers() {
    // The elastic scenario on real processes: the kill actually terminates
    // worker 1's OS process mid-run (its in-flight task surfaces as a lost
    // completion), the revival spawns a fresh process with a bumped epoch,
    // and the join adds a brand-new worker process.
    let d = dataset();
    let objective = Objective::LeastSquares { lambda: 1e-3 };
    let baseline = objective.optimum(ParallelismCfg::sequential(), &d).unwrap();
    let f0 = objective.full_objective(ParallelismCfg::sequential(), &d, &vec![0.0; d.cols()]);
    let chaos = ChaosSchedule::new()
        .kill(VTime::from_micros(200), 1)
        .revive(VTime::from_micros(600), 1)
        .join(VTime::from_micros(900));
    let mut ctx = remote_ctx(1.0, Some(chaos));
    let r = Asgd::new(objective).run(&mut ctx, &d, &cfg(200, 17));
    assert_eq!(r.updates, 200, "run survives the kill/revive/join schedule");
    let gap = r.final_objective - baseline;
    assert!(
        gap < 0.2 * (f0 - baseline),
        "chaos run should still converge: gap {gap}"
    );
    // The join took effect: a fifth worker process is part of the cluster.
    // next() does not block on future chaos, so wait past the horizon and
    // poll once in case the run drained before the join's instant.
    std::thread::sleep(std::time::Duration::from_millis(5));
    let _ = ctx.collect_all::<()>();
    assert_eq!(ctx.workers(), WORKERS + 1);
}

#[test]
fn loopback_workers_run_the_full_solver_stack_without_processes() {
    // The loopback transport (worker event loops on in-process threads,
    // same wire protocol) exercises every codec without process spawns —
    // the configuration CI uses where spawning children is restricted.
    let d = dataset();
    let objective = Objective::LeastSquares { lambda: 1e-3 };
    let baseline = objective.optimum(ParallelismCfg::sequential(), &d).unwrap();
    let f0 = objective.full_objective(ParallelismCfg::sequential(), &d, &vec![0.0; d.cols()]);
    let engine = EngineBuilder::remote()
        .spec(quiet_spec())
        .time_scale(0.0)
        .loopback_workers(Arc::new(async_optim::worker_registry))
        .build()
        .expect("loopback workers need no binary");
    let mut ctx = AsyncContext::new(Driver::from_engine(engine));
    let r = Asaga::new(objective).run(&mut ctx, &d, &cfg(150, 7));
    assert_eq!(r.updates, 150);
    let gap = r.final_objective - baseline;
    assert!(
        gap < 0.15 * (f0 - baseline),
        "loopback ASAGA should converge: gap {gap}"
    );
}
