//! The zero-allocation proof for the solver hot path.
//!
//! A counting global allocator wraps the system allocator; after a warm-up
//! pass fills the [`ScratchPool`]'s buffers to their steady-state
//! capacities, the measured loop — sample a mini-batch, evaluate the
//! pooled gradient kernel, absorb the delta into the model, fold it into a
//! [`DeltaFold`] accumulator, recycle the buffers — must perform **zero**
//! heap allocations per iteration.
//!
//! Scope: this is the per-iteration compute-and-absorb cycle the
//! `ScratchPool` exists for. Engine-side costs outside it (boxing a task
//! closure, the 1-allocation `Arc` cell of a broadcast snapshot push) are
//! bounded separately by `snapshot_push_is_allocation_bounded`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use async_core::AsyncBcast;
use async_data::{sampler, Dataset, SynthSpec};
use async_linalg::GradDelta;
use async_optim::{Objective, ScratchPool, ShardedAbsorber};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to `System`, only adding a counter.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCS.load(Ordering::SeqCst)
}

fn sparse_dataset() -> Dataset {
    let (base, _) = SynthSpec::sparse("alloc-zero", 400, 8_000, 24, 5)
        .generate()
        .expect("synthetic generation");
    base
}

/// One steady-state iteration: sample → pooled gradient → absorb → fold →
/// recycle. `iter` keys the RNG so warm-up and measurement sample the very
/// same batches (capacities proven sufficient by construction).
fn iteration(
    objective: &Objective,
    dataset_block: &async_data::Block,
    w: &mut [f64],
    grad_sum: &mut [f64],
    pool: &ScratchPool,
    iter: u64,
) {
    let mut scratch = pool.checkout();
    let mut rng = sampler::derive_rng(42, iter, 0);
    sampler::sample_fraction_into(&mut rng, dataset_block.rows(), 0.1, &mut scratch.rows);
    let g = objective.minibatch_grad_delta_pooled(dataset_block, w, &mut scratch, pool);
    pool.give_back(scratch);
    // Server-side absorption: scatter the update onto the model, fold it
    // into a reusable accumulator, apply the folded sum to a running
    // gradient aggregate, and hand the buffers back.
    g.axpy_into(-0.05, w);
    let mut fold = pool.checkout_fold(w.len());
    g.fold_into(1.0, &mut fold);
    fold.axpy_into(0.5, grad_sum);
    pool.give_back_fold(fold);
    pool.recycle_delta(g);
}

#[test]
fn steady_state_iterations_allocate_nothing() {
    let dataset = sparse_dataset();
    let blocks = dataset.partition(1);
    let block = &blocks[0];
    let objective = Objective::Logistic { lambda: 1e-3 };
    let pool = ScratchPool::new();
    let mut w = vec![0.05; dataset.cols()];
    let mut grad_sum = vec![0.0; dataset.cols()];

    const ROUNDS: u64 = 40;
    // Warm-up: every buffer reaches the capacity this exact iteration
    // sequence needs (measurement replays the same RNG keys).
    for i in 0..ROUNDS {
        iteration(&objective, block, &mut w, &mut grad_sum, &pool, i);
    }

    let before = allocations();
    for i in 0..ROUNDS {
        iteration(&objective, block, &mut w, &mut grad_sum, &pool, i);
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "steady-state solver iterations must not allocate ({} allocations over {} rounds)",
        after - before,
        ROUNDS
    );
}

#[test]
fn dense_arm_is_also_allocation_free_once_warm() {
    let dataset = sparse_dataset().densified();
    let blocks = dataset.partition(1);
    let block = &blocks[0];
    let objective = Objective::LeastSquares { lambda: 1e-3 };
    let pool = ScratchPool::new();
    let mut w = vec![0.0; dataset.cols()];
    let mut grad_sum = vec![0.0; dataset.cols()];
    for i in 0..10 {
        iteration(&objective, block, &mut w, &mut grad_sum, &pool, i);
    }
    let before = allocations();
    for i in 0..10 {
        iteration(&objective, block, &mut w, &mut grad_sum, &pool, i);
    }
    assert_eq!(allocations() - before, 0, "dense arm allocated");
}

/// One steady-state *batched* wave on the sharded server: produce
/// `batch` pooled gradients, fold-then-apply them through the absorber's
/// per-shard accumulators, and recycle every consumed delta's buffers
/// through [`ScratchPool::recycle_delta`].
#[allow(clippy::too_many_arguments)]
fn batched_wave(
    objective: &Objective,
    block: &async_data::Block,
    w: &mut [f64],
    absorber: &mut ShardedAbsorber,
    pool: &ScratchPool,
    deltas: &mut Vec<GradDelta>,
    damps: &[f64],
    iter: u64,
) {
    for k in 0..damps.len() as u64 {
        let mut scratch = pool.checkout();
        let mut rng = sampler::derive_rng(7, iter * 101 + k, 0);
        sampler::sample_fraction_into(&mut rng, block.rows(), 0.1, &mut scratch.rows);
        let g = objective.minibatch_grad_delta_pooled(block, w, &mut scratch, pool);
        pool.give_back(scratch);
        deltas.push(g);
    }
    let ds = &*deltas;
    absorber.asgd_wave(w, ds.len(), |k| &ds[k], damps, 0.05, objective.lambda());
    for g in deltas.drain(..) {
        pool.recycle_delta(g);
    }
}

#[test]
fn batched_sharded_waves_allocate_nothing() {
    // The fold-then-apply wave — per-shard DeltaFold folding, the fused
    // apply pass on the persistent shard pool, and the delta recycling —
    // must be as allocation-free as the per-delta path once warm.
    let dataset = sparse_dataset();
    let blocks = dataset.partition(1);
    let block = &blocks[0];
    let objective = Objective::Logistic { lambda: 0.0 };
    let pool = ScratchPool::new();
    let mut absorber = ShardedAbsorber::new(dataset.cols(), 4);
    let mut w = vec![0.02; dataset.cols()];
    let mut deltas: Vec<GradDelta> = Vec::with_capacity(4);
    let damps = [1.0, 0.5, 1.0, 0.25];

    const ROUNDS: u64 = 30;
    for i in 0..ROUNDS {
        batched_wave(
            &objective,
            block,
            &mut w,
            &mut absorber,
            &pool,
            &mut deltas,
            &damps,
            i,
        );
    }
    let before = allocations();
    for i in 0..ROUNDS {
        batched_wave(
            &objective,
            block,
            &mut w,
            &mut absorber,
            &pool,
            &mut deltas,
            &damps,
            i,
        );
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "steady-state batched waves must not allocate ({} allocations over {} waves)",
        after - before,
        ROUNDS
    );
}

#[test]
fn sharded_snapshot_push_is_allocation_bounded() {
    // The shard-parallel snapshot memcpy recycles pruned buffers like the
    // serial push; its only extra steady-state allocation is the small
    // per-push chunk-descriptor vector (bounded by the pool's thread
    // count), never an O(dim) buffer.
    let dim = 8_000;
    let pool = async_linalg::ShardPool::new(4);
    let b: AsyncBcast<Vec<f64>> = AsyncBcast::new(0, vec![0.0; dim], 0);
    let w = vec![1.0; dim];
    for _ in 0..10 {
        b.push_snapshot_sharded(&w, Some(&[3, 77]), &pool);
    }
    let before = allocations();
    const PUSHES: u64 = 25;
    for _ in 0..PUSHES {
        b.push_snapshot_sharded(&w, Some(&[3, 77]), &pool);
    }
    let per_push = (allocations() - before) as f64 / PUSHES as f64;
    assert!(
        per_push <= 3.0,
        "sharded snapshot push should cost O(1) small allocations, got {per_push} per push"
    );
    assert!(b.stats().recycled_buffers >= 30);
}

#[test]
fn snapshot_push_is_allocation_bounded() {
    // A broadcast snapshot push recycles pruned buffers: its only
    // steady-state allocation is the new version's `Arc` cell (one per
    // push), never an O(dim) buffer.
    let dim = 8_000;
    let b: AsyncBcast<Vec<f64>> = AsyncBcast::new(0, vec![0.0; dim], 0);
    b.enable_incremental(8);
    let w = vec![1.0; dim];
    let support = GradDelta::Sparse(
        async_linalg::SparseVec::from_pairs(vec![(3, 1.0), (77, -1.0)], dim).unwrap(),
    );
    for _ in 0..10 {
        b.push_snapshot_diff(&w, &support);
    }
    let before = allocations();
    const PUSHES: u64 = 25;
    for _ in 0..PUSHES {
        b.push_snapshot_diff(&w, &support);
    }
    let per_push = (allocations() - before) as f64 / PUSHES as f64;
    assert!(
        per_push <= 2.0,
        "snapshot push should cost O(1) small allocations, got {per_push} per push"
    );
    assert!(b.stats().recycled_buffers >= 30);
}
