//! End-to-end durability: kill-the-driver-and-resume runs over the
//! crash-consistent checkpoint store.
//!
//! The headline contract: an ASGD run that "crashes" (stops at a cadence
//! boundary) and auto-resumes from its durable store finishes **bit
//! identically** to an uninterrupted run of the same total budget — model
//! version numbering, per-task RNG streams, and error-feedback residuals
//! all re-seat exactly. Recovery also survives torn and bit-rotted
//! generations (falling back to the newest valid one, which moves the cut
//! earlier but keeps the bits exact), and the full
//! {ASGD, ASAGA, MSGD} × {ASP, BSP, SSP} grid resumes and descends under
//! worker chaos.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use async_cluster::{ChaosSchedule, ClusterSpec, CommModel, DelayModel, VDur, VTime};
use async_core::{AsyncContext, BarrierFilter};
use async_data::{Dataset, SynthSpec};
use async_linalg::{ParallelismCfg, Quant};
use async_optim::{
    Asaga, Asgd, AsyncMsgd, AsyncSolver, Checkpoint, CheckpointStore, CompressCfg, DiskFault,
    DiskFaultPlan, Objective, RunReport, ServeFeed, SolverCfg, SolverHistory,
};

const WORKERS: usize = 4;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn scratch_dir(tag: &str) -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "async-durable-e2e-{tag}-{}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn sim_ctx() -> AsyncContext {
    AsyncContext::sim(
        ClusterSpec::homogeneous(WORKERS, DelayModel::None)
            .with_comm(CommModel::free())
            .with_sched_overhead(VDur::ZERO),
    )
}

fn dataset() -> Dataset {
    SynthSpec::dense("durable-e2e", 240, 12, 7)
        .generate()
        .unwrap()
        .0
}

fn cfg(max_updates: u64) -> SolverCfg {
    SolverCfg {
        step: 0.04,
        batch_fraction: 0.25,
        // BSP waves of `WORKERS` tasks keep a `checkpoint_every` that is a
        // multiple of the worker count on round boundaries — the
        // consistent cut the bit-identity contract needs.
        barrier: BarrierFilter::Bsp,
        max_updates,
        checkpoint_every: 8,
        seed: 17,
        ..SolverCfg::default()
    }
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn run_asgd(objective: Objective, d: &Dataset, c: &SolverCfg) -> RunReport {
    let mut ctx = sim_ctx();
    Asgd::new(objective).run(&mut ctx, d, c)
}

/// One interrupted-and-resumed ASGD lineage against its uninterrupted
/// twin, parameterized over the compression arm (the compressor's
/// error-feedback residuals are part of the crash state).
fn assert_resume_bit_identical(tag: &str, compress: CompressCfg, lambda: f64) {
    let d = dataset();
    let objective = Objective::LeastSquares { lambda };
    let dir = scratch_dir(tag);

    let uninterrupted = run_asgd(
        objective,
        &d,
        &SolverCfg {
            compress,
            ..cfg(64)
        },
    );

    // "Crash" at update 40: the driver stops after a cadence save and the
    // process is gone — everything the resumed run knows is on disk.
    let crashed = run_asgd(
        objective,
        &d,
        &SolverCfg {
            compress,
            durable_dir: Some(dir.clone()),
            ..cfg(40)
        },
    );
    assert_eq!(crashed.updates, 40);
    assert_eq!(crashed.durable.resumed_from, None);
    // Cadence saves at lineage 8, 16, 24, 32, 40; the final save lands on
    // the 40 boundary and deduplicates.
    assert_eq!(crashed.durable.store.saves_ok, 5);
    assert_eq!(crashed.durable.store.saves_failed, 0);
    assert!(crashed.durable.store.bytes_written > 0);

    // A brand-new driver process: fresh solver, fresh context, same store.
    let resumed = run_asgd(
        objective,
        &d,
        &SolverCfg {
            compress,
            durable_dir: Some(dir.clone()),
            ..cfg(64)
        },
    );
    assert_eq!(resumed.durable.resumed_from, Some(40), "{tag}");
    // The lineage budget: 24 updates complete the crashed run's 64.
    assert_eq!(resumed.updates, 24, "{tag}");
    assert_eq!(
        bits(&resumed.final_w),
        bits(&uninterrupted.final_w),
        "{tag}: resumed run must finish bit-identically to the uninterrupted one"
    );
    assert_eq!(
        resumed.final_objective.to_bits(),
        uninterrupted.final_objective.to_bits(),
        "{tag}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kill_and_resume_is_bit_identical_to_an_uninterrupted_run() {
    assert_resume_bit_identical("plain", CompressCfg::Off, 1e-3);
}

#[test]
fn kill_and_resume_with_top_k_restores_residuals_bit_identically() {
    // The compressed arm: the error-feedback residuals at the cut are part
    // of the crash state — a cold compressor would diverge immediately.
    assert_resume_bit_identical(
        "topk",
        CompressCfg::TopK {
            k: 6,
            quant: Quant::Exact,
        },
        0.0,
    );
}

#[test]
fn torn_and_rotted_generations_fall_back_to_the_newest_valid_cut() {
    let d = dataset();
    let objective = Objective::LeastSquares { lambda: 1e-3 };
    let dir = scratch_dir("fallback");

    let uninterrupted = run_asgd(objective, &d, &cfg(64));
    let crashed = run_asgd(
        objective,
        &d,
        &SolverCfg {
            durable_dir: Some(dir.clone()),
            ..cfg(40)
        },
    );
    assert_eq!(crashed.updates, 40);

    // Disk havoc after the crash: a torn write lands a half-baked newer
    // generation (rename durability without data durability), and the
    // last good generation bit-rots on the platter.
    let mut store = CheckpointStore::open(&dir)
        .unwrap()
        .with_fault_plan(DiskFaultPlan::scripted(&[(
            0,
            DiskFault::TornWrite { keep_bytes: 9 },
        )]));
    store.save(48, &vec![0xAB; 512]).unwrap();
    let gen40 = dir.join("gen-000000000040.ckpt");
    let mut payload = std::fs::read(&gen40).unwrap();
    payload[21] ^= 0x40;
    std::fs::write(&gen40, payload).unwrap();

    // Recovery skips gen 48 (torn) and gen 40 (checksum), landing on 32.
    let store = CheckpointStore::open(&dir).unwrap();
    assert_eq!(store.latest_valid().map(|(g, _)| g), Some(32));

    let resumed = run_asgd(
        objective,
        &d,
        &SolverCfg {
            durable_dir: Some(dir.clone()),
            ..cfg(64)
        },
    );
    assert_eq!(resumed.durable.resumed_from, Some(32));
    // The cut moved earlier — 32 more updates instead of 24 — but the
    // bits still match the uninterrupted run.
    assert_eq!(resumed.updates, 32);
    assert_eq!(
        bits(&resumed.final_w),
        bits(&uninterrupted.final_w),
        "fallback resume must still finish bit-identically"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cold_start_on_an_empty_store_runs_the_full_budget() {
    let d = dataset();
    let objective = Objective::LeastSquares { lambda: 1e-3 };
    let dir = scratch_dir("cold");
    let r = run_asgd(
        objective,
        &d,
        &SolverCfg {
            durable_dir: Some(dir.clone()),
            ..cfg(24)
        },
    );
    assert_eq!(r.durable.resumed_from, None);
    assert_eq!(r.updates, 24);
    // Cadence saves at 8, 16, 24 — the store is ready for a future resume.
    assert_eq!(r.durable.store.saves_ok, 3);
    assert_eq!(
        CheckpointStore::open(&dir)
            .unwrap()
            .latest_valid()
            .map(|(g, _)| g),
        Some(24)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn explicit_resume_from_takes_precedence_over_the_store() {
    let d = dataset();
    let objective = Objective::LeastSquares { lambda: 1e-3 };
    let dir = scratch_dir("precedence");
    let first = run_asgd(
        objective,
        &d,
        &SolverCfg {
            durable_dir: Some(dir.clone()),
            ..cfg(16)
        },
    );
    assert_eq!(first.updates, 16);

    // An explicit checkpoint outranks the store's newest generation: the
    // run resumes from it with the per-run budget semantics, and the
    // store keeps receiving this lineage's saves.
    let ckpt = Checkpoint {
        solver: "asgd".into(),
        updates: 100,
        version: 100,
        w: first.final_w.clone(),
        history: SolverHistory::None,
        residuals: Some(vec![]),
    };
    let mut ctx = sim_ctx();
    let r = Asgd::new(objective).resume_from(ckpt).run(
        &mut ctx,
        &d,
        &SolverCfg {
            durable_dir: Some(dir.clone()),
            ..cfg(8)
        },
    );
    assert_eq!(r.durable.resumed_from, None, "store was not consulted");
    assert_eq!(r.updates, 8, "explicit resume keeps the per-run budget");
    // The saves continued the explicit lineage: generations 108, 116.
    assert_eq!(
        CheckpointStore::open(&dir)
            .unwrap()
            .latest_valid()
            .map(|(g, _)| g),
        Some(108)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_resume_grid_completes_and_descends_under_chaos() {
    // {ASGD, ASAGA, MSGD} × {ASP, BSP, SSP}: phase 1 runs half the budget
    // under worker kills/revivals and crashes; phase 2 auto-resumes from
    // the store under the same chaos and completes the lineage. Every
    // resumed run picks up exactly where the crash left off and the full
    // lineage descends. (ASAGA re-bases its table at the restored model,
    // so the grid asserts completion and descent, not bit-identity.)
    let d = dataset();
    let objective = Objective::LeastSquares { lambda: 1e-3 };
    let f0 = objective.full_objective(ParallelismCfg::sequential(), &d, &vec![0.0; d.cols()]);
    let chaos = ChaosSchedule::new()
        .kill(VTime::from_micros(8), 1)
        .revive(VTime::from_micros(25), 1);
    type SolverFactory = Box<dyn Fn() -> Box<dyn AsyncSolver>>;
    let solvers: Vec<(&str, SolverFactory)> = vec![
        ("asgd", Box::new(move || Box::new(Asgd::new(objective)))),
        ("asaga", Box::new(move || Box::new(Asaga::new(objective)))),
        (
            "async-msgd",
            Box::new(move || Box::new(AsyncMsgd::new(objective).with_momentum(0.5))),
        ),
    ];
    let barriers = [
        BarrierFilter::Asp,
        BarrierFilter::Bsp,
        BarrierFilter::Ssp { slack: 2 },
    ];
    for (name, make) in &solvers {
        for barrier in &barriers {
            let dir = scratch_dir(&format!("grid-{name}"));
            let phase_cfg = |max_updates: u64| SolverCfg {
                step: 0.04,
                batch_fraction: 0.25,
                barrier: barrier.clone(),
                max_updates,
                checkpoint_every: 10,
                seed: 23,
                durable_dir: Some(dir.clone()),
                ..SolverCfg::default()
            };
            let mut ctx1 = sim_ctx();
            ctx1.driver_mut().install_chaos(&chaos);
            let r1 = make().run(&mut ctx1, &d, &phase_cfg(30));
            assert_eq!(r1.updates, 30, "{name}/{barrier:?}: phase 1");

            let mut ctx2 = sim_ctx();
            ctx2.driver_mut().install_chaos(&chaos);
            let r2 = make().run(&mut ctx2, &d, &phase_cfg(60));
            assert_eq!(
                r2.durable.resumed_from,
                Some(30),
                "{name}/{barrier:?}: phase 2 must auto-resume"
            );
            assert_eq!(r2.updates, 30, "{name}/{barrier:?}: lineage budget");
            // The resumed trace starts exactly at the crashed model…
            let resumed_start = r2.trace.points()[0].1;
            assert!(
                (resumed_start - r1.final_objective).abs() < 1e-12,
                "{name}/{barrier:?}: resume must start from the stored model"
            );
            // …and the full lineage descends.
            assert!(
                r2.final_objective.is_finite() && r2.final_objective < f0,
                "{name}/{barrier:?}: lineage must descend ({} vs f0 {f0})",
                r2.final_objective
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

#[test]
fn resumed_run_republishes_through_a_reused_serve_feed() {
    // A serving stack that outlives the driver: the feed is marked done
    // when the crashed run ends, and the resumed run's publish must re-arm
    // it so readers rendezvous again instead of seeing a finished feed.
    let d = dataset();
    let objective = Objective::LeastSquares { lambda: 1e-3 };
    let dir = scratch_dir("feed");
    let feed = ServeFeed::new();
    let r1 = run_asgd(
        objective,
        &d,
        &SolverCfg {
            durable_dir: Some(dir.clone()),
            serve_feed: Some(feed.clone()),
            ..cfg(16)
        },
    );
    assert_eq!(r1.updates, 16);
    assert!(feed.is_done(), "crashed run marked the feed done");

    let mut ctx = sim_ctx();
    let mut solver = Asgd::new(objective);
    let r2 = solver.run(
        &mut ctx,
        &d,
        &SolverCfg {
            durable_dir: Some(dir.clone()),
            serve_feed: Some(feed.clone()),
            ..cfg(32)
        },
    );
    assert_eq!(r2.durable.resumed_from, Some(16));
    assert!(
        feed.is_done(),
        "resumed run re-marked the feed done at its end"
    );
    // The republished model is the live one: readers that rendezvous now
    // see the resumed run's final broadcast, not a stale phase-1 handle.
    let model = feed.try_model().expect("model stays published");
    assert_eq!(model.bcast.latest_version(), 32);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn lint_resume_flags_residual_less_checkpoints_for_compressed_runs() {
    let legacy = Checkpoint {
        solver: "asgd".into(),
        updates: 10,
        version: 10,
        w: vec![0.0; 4],
        history: SolverHistory::None,
        residuals: None,
    };
    let compressed = SolverCfg {
        compress: CompressCfg::TopK {
            k: 4,
            quant: Quant::Exact,
        },
        ..SolverCfg::default()
    };
    let warnings = compressed.lint_resume(&legacy);
    assert_eq!(warnings.len(), 1);
    assert!(warnings[0].contains("top-4"));
    assert!(warnings[0].contains("residuals"));

    // A residual-carrying checkpoint (even an empty export) is fine…
    let modern = Checkpoint {
        residuals: Some(vec![]),
        ..legacy.clone()
    };
    assert!(compressed.lint_resume(&modern).is_empty());
    // …and so is resuming an uncompressed run from a legacy checkpoint.
    assert!(SolverCfg::default().lint_resume(&legacy).is_empty());
}
