//! End-to-end barrier-control runs: ASGD and ASAGA driving
//! `AsyncContext::async_reduce` through `SimEngine` under ASP, BSP and
//! SSP, checking determinism, staleness bounds, and convergence.

use async_cluster::{ClusterSpec, CommModel, DelayModel, VDur, VTime};
use async_core::{AsyncContext, BarrierFilter};
use async_data::{Dataset, SynthSpec};
use async_linalg::ParallelismCfg;
use async_optim::{Asaga, Asgd, AsyncSolver, Objective, RunReport, SolverCfg};

const WORKERS: usize = 4;
const STRAGGLER_INTENSITY: f64 = 1.0;

fn cds_ctx() -> AsyncContext {
    // One controlled-delay straggler (§6.3), free comms so barrier effects
    // dominate, zero scheduling overhead for easy arithmetic.
    AsyncContext::sim(
        ClusterSpec::homogeneous(
            WORKERS,
            DelayModel::ControlledDelay {
                worker: WORKERS - 1,
                intensity: STRAGGLER_INTENSITY,
            },
        )
        .with_comm(CommModel::free())
        .with_sched_overhead(VDur::ZERO),
    )
}

fn dataset() -> Dataset {
    SynthSpec::dense("e2e", 240, 12, 7).generate().unwrap().0
}

fn run_asgd(barrier: BarrierFilter, dataset: &Dataset) -> RunReport {
    let mut ctx = cds_ctx();
    let cfg = SolverCfg {
        step: 0.05,
        batch_fraction: 0.25,
        barrier,
        max_updates: 120,
        seed: 3,
        ..SolverCfg::default()
    };
    Asgd::new(Objective::LeastSquares { lambda: 0.01 }).run(&mut ctx, dataset, &cfg)
}

#[test]
fn iterate_counts_are_deterministic_across_runs() {
    let d = dataset();
    for barrier in [
        BarrierFilter::Asp,
        BarrierFilter::Bsp,
        BarrierFilter::Ssp { slack: 2 },
    ] {
        let a = run_asgd(barrier.clone(), &d);
        let b = run_asgd(barrier.clone(), &d);
        assert_eq!(
            a.worker_clocks, b.worker_clocks,
            "{barrier:?}: clocks must reproduce"
        );
        assert_eq!(a.updates, b.updates);
        assert_eq!(
            a.wall_clock, b.wall_clock,
            "{barrier:?}: virtual time must reproduce"
        );
        assert_eq!(
            a.final_w, b.final_w,
            "{barrier:?}: iterates must be bit-identical"
        );
        assert_eq!(a.trace.points(), b.trace.points());
    }
}

#[test]
fn bsp_locks_worker_clocks_in_rounds() {
    let d = dataset();
    let r = run_asgd(BarrierFilter::Bsp, &d);
    let min = r.worker_clocks.iter().min().unwrap();
    let max = r.worker_clocks.iter().max().unwrap();
    assert!(
        max - min <= 1,
        "BSP clocks must stay within one round: {:?}",
        r.worker_clocks
    );
    // With a full barrier, consumed results are never stale by more than
    // one wave of the remaining workers.
    assert!(
        r.max_staleness <= WORKERS as u64,
        "BSP staleness {}",
        r.max_staleness
    );
}

#[test]
fn asp_outruns_bsp_against_the_straggler() {
    let d = dataset();
    let asp = run_asgd(BarrierFilter::Asp, &d);
    let bsp = run_asgd(BarrierFilter::Bsp, &d);
    assert_eq!(asp.updates, bsp.updates, "same update budget");
    assert!(
        asp.wall_clock < bsp.wall_clock,
        "ASP ({}) should beat BSP ({}) to the same update count under a CDS straggler",
        asp.wall_clock,
        bsp.wall_clock
    );
    // Fast workers run ahead under ASP…
    let fast = asp.worker_clocks[..WORKERS - 1].iter().min().unwrap();
    assert!(
        *fast > asp.worker_clocks[WORKERS - 1],
        "ASP fast workers should outpace the straggler: {:?}",
        asp.worker_clocks
    );
    // …and nobody waits at barriers (paper Fig. 4: ASP wait ≈ 0).
    assert!(
        asp.mean_wait < bsp.mean_wait,
        "ASP mean wait {} should undercut BSP {}",
        asp.mean_wait,
        bsp.mean_wait
    );
}

#[test]
fn ssp_slack_bounds_observed_staleness_between_asp_and_bsp() {
    let d = dataset();
    let slack = 1u64;
    let ssp = run_asgd(BarrierFilter::Ssp { slack }, &d);
    let asp = run_asgd(BarrierFilter::Asp, &d);

    // SSP bounds the clock spread by construction (a worker may already
    // hold one granted task when the bound tightens, hence +1)…
    let min = ssp.worker_clocks.iter().min().unwrap();
    let max = ssp.worker_clocks.iter().max().unwrap();
    assert!(
        max - min <= slack + 1,
        "SSP(slack={slack}) clock spread {:?}",
        ssp.worker_clocks
    );
    // …while ASP's spread blows past it under the same straggler.
    let amin = asp.worker_clocks.iter().min().unwrap();
    let amax = asp.worker_clocks.iter().max().unwrap();
    assert!(
        amax - amin > slack + 1,
        "ASP spread should exceed SSP's bound: {:?}",
        asp.worker_clocks
    );

    // Observed result staleness: an SSP(slack) result can be at most
    // (slack + 1) own-clock steps behind, each overlapping at most the
    // other P−1 workers' updates plus its own; ASP has no such bound.
    let ssp_bound = (slack + 2) * WORKERS as u64;
    assert!(
        ssp.max_staleness <= ssp_bound,
        "SSP staleness {} exceeds bound {ssp_bound}",
        ssp.max_staleness
    );
    assert!(
        ssp.max_staleness <= asp.max_staleness,
        "SSP ({}) should not observe more staleness than ASP ({})",
        ssp.max_staleness,
        asp.max_staleness
    );
}

#[test]
fn asgd_converges_logistic_regression_under_ssp() {
    // The acceptance-criterion run: logistic regression driven through
    // AsyncContext::async_reduce with BarrierFilter::Ssp on SimEngine,
    // converging to a small loss.
    let (d, _) = SynthSpec::dense("logit", 300, 10, 21)
        .generate_classification()
        .unwrap();

    let objective = Objective::Logistic { lambda: 1e-3 };
    let mut ctx = cds_ctx();
    let cfg = SolverCfg {
        step: 0.8,
        batch_fraction: 0.3,
        barrier: BarrierFilter::Ssp { slack: 2 },
        max_updates: 400,
        eval_every: 50,
        seed: 5,
        ..SolverCfg::default()
    };
    let r = Asgd::new(objective).run(&mut ctx, &d, &cfg);
    assert_eq!(r.updates, 400);
    let f0 = objective.full_objective(ParallelismCfg::sequential(), &d, &vec![0.0; d.cols()]);
    assert!(
        r.final_objective < 0.35 * f0,
        "logistic loss should drop well below ln 2: {} vs initial {f0}",
        r.final_objective
    );
    // The trace is monotone enough to certify convergence end-to-end.
    assert!(r.trace.points().len() >= 9);
    assert!(r.trace.final_error().unwrap() < r.trace.points()[0].1);
}

#[test]
fn asaga_history_converges_and_prunes_memory() {
    let d = dataset();
    let objective = Objective::LeastSquares { lambda: 1e-3 };
    let baseline = objective.optimum(ParallelismCfg::sequential(), &d).unwrap();
    let mut ctx = cds_ctx();
    let cfg = SolverCfg {
        step: 0.05,
        batch_fraction: 0.2,
        barrier: BarrierFilter::Asp,
        max_updates: 600,
        seed: 9,
        baseline,
        ..SolverCfg::default()
    };
    let r = Asaga::new(objective).run(&mut ctx, &d, &cfg);
    assert_eq!(r.updates, 600);
    let f0 = objective.full_objective(ParallelismCfg::sequential(), &d, &vec![0.0; d.cols()]);
    let gap0 = f0 - baseline;
    let gap = r.final_objective - baseline;
    assert!(
        gap < 0.05 * gap0,
        "ASAGA should close most of the optimality gap: {gap} of initial {gap0}"
    );
}

#[test]
fn asaga_survives_a_mid_run_worker_failure() {
    // A worker dies with a task in flight: its result never arrives, the
    // solver must keep iterating on the survivors and release the dead
    // task's history pin at run end (the unpin bookkeeping debug-asserts
    // on imbalance, so this exercises the cleanup path).
    let d = dataset();
    let objective = Objective::LeastSquares { lambda: 1e-3 };
    let mut ctx = cds_ctx();
    // Tasks run ~3.6µs here and the full budget completes in ~155µs of
    // virtual time, so 50µs lands the failure squarely mid-run.
    ctx.driver_mut().schedule_failure(1, VTime::from_micros(50));
    let cfg = SolverCfg {
        step: 0.04,
        batch_fraction: 0.25,
        barrier: BarrierFilter::Asp,
        max_updates: 150,
        seed: 23,
        ..SolverCfg::default()
    };
    let r = Asaga::new(objective).run(&mut ctx, &d, &cfg);
    assert_eq!(
        r.updates, 150,
        "survivors must still reach the update budget"
    );
    assert!(r.final_objective.is_finite());
    // The dead worker's clock froze early; survivors kept moving.
    assert!(
        r.worker_clocks[0] > r.worker_clocks[1] + 10,
        "{:?}",
        r.worker_clocks
    );
    assert_eq!(ctx.stat().alive_count(), WORKERS - 1);
}

#[test]
fn asaga_matches_asgd_determinism_under_bsp() {
    let d = dataset();
    let objective = Objective::LeastSquares { lambda: 1e-3 };
    let run = || {
        let mut ctx = cds_ctx();
        let cfg = SolverCfg {
            step: 0.04,
            batch_fraction: 0.25,
            barrier: BarrierFilter::Bsp,
            max_updates: 80,
            seed: 13,
            ..SolverCfg::default()
        };
        Asaga::new(objective).run(&mut ctx, &d, &cfg)
    };
    let (a, b) = (run(), run());
    assert_eq!(a.final_w, b.final_w);
    assert_eq!(a.worker_clocks, b.worker_clocks);
    let min = a.worker_clocks.iter().min().unwrap();
    let max = a.worker_clocks.iter().max().unwrap();
    assert!(max - min <= 1, "BSP rounds: {:?}", a.worker_clocks);
}

#[test]
fn staleness_damping_keeps_asp_stable_at_large_steps() {
    // At an aggressive step size the undamped ASP run may oscillate; the
    // 1/(1+staleness) rule must do no worse.
    let d = dataset();
    let objective = Objective::LeastSquares { lambda: 1e-3 };
    let run = |damping: bool| {
        let mut ctx = cds_ctx();
        let cfg = SolverCfg {
            step: 0.12,
            staleness_damping: damping,
            batch_fraction: 0.25,
            barrier: BarrierFilter::Asp,
            max_updates: 200,
            seed: 17,
            ..SolverCfg::default()
        };
        Asgd::new(objective).run(&mut ctx, &d, &cfg)
    };
    let plain = run(false);
    let damped = run(true);
    assert!(damped.final_objective.is_finite());
    assert!(
        damped.final_objective <= plain.final_objective * 1.05,
        "damped ({}) should not trail undamped ({}) meaningfully",
        damped.final_objective,
        plain.final_objective
    );
}
