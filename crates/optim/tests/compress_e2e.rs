//! Convergence acceptance for compressed communication: a reusable
//! {solver × barrier × compression} grid on the deterministic simulator,
//! the error-feedback telescoping identity, the lossless-passthrough
//! bit-identity contract, and one remote arm proving quantized frames
//! cross real process boundaries.

use async_cluster::{ChaosSchedule, ClusterSpec, CommModel, DelayModel, VDur, VTime};
use async_core::{AsyncContext, BarrierFilter};
use async_data::{Dataset, SynthSpec};
use async_linalg::{ParallelismCfg, Quant};
use async_optim::{
    Asaga, Asgd, AsyncMsgd, AsyncSolver, CompressCfg, CompressorBank, Objective, RunReport,
    SolverCfg,
};
use sparklet::{Driver, EngineBuilder};

const WORKERS: usize = 4;

fn quiet_spec() -> ClusterSpec {
    ClusterSpec::homogeneous(WORKERS, DelayModel::None)
        .with_comm(CommModel::free())
        .with_sched_overhead(VDur::ZERO)
}

fn dataset() -> Dataset {
    SynthSpec::dense("compress-e2e", 160, 10, 3)
        .generate()
        .unwrap()
        .0
}

fn cfg(barrier: BarrierFilter, compress: CompressCfg) -> SolverCfg {
    SolverCfg::builder()
        .step(0.04)
        .batch_fraction(0.25)
        .barrier(barrier)
        .max_updates(150)
        .seed(11)
        .compress(compress)
        .build()
        .unwrap()
}

type SolverFactory = Box<dyn Fn() -> Box<dyn AsyncSolver>>;

fn solvers(objective: Objective) -> Vec<(&'static str, SolverFactory)> {
    vec![
        ("asgd", Box::new(move || Box::new(Asgd::new(objective)))),
        ("asaga", Box::new(move || Box::new(Asaga::new(objective)))),
        (
            "async-msgd",
            Box::new(move || Box::new(AsyncMsgd::new(objective).with_momentum(0.5))),
        ),
    ]
}

/// Runs one `(solver, barrier, compression)` cell on the simulator.
fn run_sim(make: &SolverFactory, barrier: BarrierFilter, compress: CompressCfg) -> RunReport {
    let d = dataset();
    let mut ctx = AsyncContext::sim(quiet_spec());
    make().run(&mut ctx, &d, &cfg(barrier, compress))
}

/// The reusable convergence grid: every cell must spend its full update
/// budget and close the optimality gap, and each compressed cell must land
/// within tolerance of its uncompressed twin. Returns the per-cell gaps
/// for callers that assert more.
fn assert_convergence_grid(
    objective: Objective,
    barriers: &[(&str, BarrierFilter)],
    levels: &[(&str, CompressCfg)],
    gap_frac: f64,
    agree_frac: f64,
) {
    let d = dataset();
    let baseline = objective.optimum(ParallelismCfg::sequential(), &d).unwrap();
    let f0 = objective.full_objective(ParallelismCfg::sequential(), &d, &vec![0.0; d.cols()]);
    let gap0 = f0 - baseline;
    for (sname, make) in &solvers(objective) {
        for (bname, barrier) in barriers {
            let mut off_gap = None;
            for (lname, compress) in levels {
                let r = run_sim(make, barrier.clone(), *compress);
                let cell = format!("{sname}/{bname}/{lname}");
                assert_eq!(r.updates, 150, "{cell}: must spend the update budget");
                let gap = r.final_objective - baseline;
                assert!(gap < gap_frac * gap0, "{cell}: gap {gap} vs initial {gap0}");
                match off_gap {
                    // The first level of every grid row is the
                    // uncompressed reference.
                    None => {
                        assert!(compress.is_off(), "grid rows must start with Off");
                        off_gap = Some(gap);
                    }
                    Some(off) => assert!(
                        (gap - off).abs() <= agree_frac * gap0,
                        "{cell}: compressed gap {gap} vs uncompressed {off} (gap0 {gap0})"
                    ),
                }
            }
        }
    }
}

#[test]
fn compression_grid_converges_within_tolerance_of_uncompressed() {
    let barriers: &[(&str, BarrierFilter)] = &[
        ("asp", BarrierFilter::Asp),
        ("bsp", BarrierFilter::Bsp),
        ("ssp", BarrierFilter::Ssp { slack: 2 }),
    ];
    let levels: &[(&str, CompressCfg)] = &[
        ("off", CompressCfg::Off),
        (
            "topk",
            CompressCfg::TopK {
                k: 4,
                quant: Quant::Exact,
            },
        ),
        (
            "topk-i8",
            CompressCfg::TopK {
                k: 4,
                quant: Quant::I8,
            },
        ),
    ];
    assert_convergence_grid(
        Objective::LeastSquares { lambda: 0.0 },
        barriers,
        levels,
        0.25,
        0.15,
    );
}

#[test]
fn lossless_passthrough_is_bit_identical_to_off() {
    // k = usize::MAX with exact values ships every coordinate of every
    // delta: the residual never holds anything and the server must see
    // bit-for-bit the arithmetic it sees with compression off. The
    // supported configuration is the sparse fast path with λ = 0 —
    // exactly what `SolverCfg::lint` steers to. (The dense apply kernels
    // fuse their term sums, so re-expressing a *dense* delta as sparse
    // shifts results by ulps; compression always ships sparse.)
    let (d, _) = SynthSpec::sparse("compress-passthrough", 160, 400, 12, 7)
        .generate()
        .unwrap();
    let objective = Objective::LeastSquares { lambda: 0.0 };
    let passthrough = CompressCfg::TopK {
        k: usize::MAX,
        quant: Quant::Exact,
    };
    let run = |make: &SolverFactory, compress: CompressCfg| {
        let mut ctx = AsyncContext::sim(quiet_spec());
        make().run(&mut ctx, &d, &cfg(BarrierFilter::Asp, compress))
    };
    for (name, make) in &solvers(objective) {
        let off = run(make, CompressCfg::Off);
        let on = run(make, passthrough);
        assert_eq!(
            off.final_objective.to_bits(),
            on.final_objective.to_bits(),
            "{name}: passthrough changed the final objective"
        );
        for (i, (a, b)) in off.final_w.iter().zip(on.final_w.iter()).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{name}: passthrough changed w[{i}]: {a} vs {b}"
            );
        }
        assert_eq!(off.updates, on.updates, "{name}: update counts diverged");
    }
}

#[test]
fn error_feedback_telescopes_exactly_for_every_solver() {
    // The invariant that makes top-k lossy-but-unbiased-in-the-limit:
    // everything ever dropped is still in the residual, so per coordinate
    // Σ raw = Σ shipped + residual up to f64 accumulation error.
    let objective = Objective::LeastSquares { lambda: 0.0 };
    let compress = CompressCfg::TopK {
        k: 3,
        quant: Quant::I8,
    };
    let d = dataset();
    type BankedFactory = Box<dyn Fn(CompressorBank) -> Box<dyn AsyncSolver>>;
    let banked: Vec<(&str, BankedFactory)> = vec![
        (
            "asgd",
            Box::new(move |b| Box::new(Asgd::new(objective).with_compressor_bank(b))),
        ),
        (
            "asaga",
            Box::new(move |b| Box::new(Asaga::new(objective).with_compressor_bank(b))),
        ),
        (
            "async-msgd",
            Box::new(move |b| {
                Box::new(
                    AsyncMsgd::new(objective)
                        .with_momentum(0.5)
                        .with_compressor_bank(b),
                )
            }),
        ),
    ];
    for (name, make) in &banked {
        let bank = CompressorBank::with_tracking();
        let mut ctx = AsyncContext::sim(quiet_spec());
        let r = make(bank.clone()).run(&mut ctx, &d, &cfg(BarrierFilter::Asp, compress));
        assert_eq!(r.updates, 150, "{name}: must spend the update budget");
        let parts = bank.parts();
        assert!(!parts.is_empty(), "{name}: no partition ever compressed");
        for part in parts {
            bank.with_part(part, |ef| {
                let (raw, shipped) = ef.tracking().expect("bank was built tracking");
                let residual = ef.residual();
                for i in 0..raw.len() {
                    let drift = (raw[i] - (shipped[i] + residual[i])).abs();
                    assert!(
                        drift <= 1e-9,
                        "{name}: part {part} coordinate {i} telescoping drift {drift}"
                    );
                }
            })
            .expect("partition state exists");
        }
    }
}

#[test]
fn quantized_frames_cross_real_process_boundaries() {
    // One remote arm: the same compressed configuration runs on real
    // worker processes over loopback TCP, so CompressedDelta frames and
    // worker-side error-feedback state are exercised end to end. The
    // stochastic completion order differs from the simulator's, so the
    // contract is final-loss agreement, not bit-equality.
    let d = dataset();
    let objective = Objective::LeastSquares { lambda: 0.0 };
    let baseline = objective.optimum(ParallelismCfg::sequential(), &d).unwrap();
    let f0 = objective.full_objective(ParallelismCfg::sequential(), &d, &vec![0.0; d.cols()]);
    let gap0 = f0 - baseline;
    let compress = CompressCfg::TopK {
        k: 4,
        quant: Quant::I8,
    };

    let mut sim_ctx = AsyncContext::sim(quiet_spec());
    let sim = Asgd::new(objective).run(&mut sim_ctx, &d, &cfg(BarrierFilter::Asp, compress));

    let engine = EngineBuilder::remote()
        .spec(quiet_spec())
        .time_scale(0.0)
        .worker_bin(env!("CARGO_BIN_EXE_async_worker"))
        .build()
        .expect("spawn workers over loopback TCP");
    let mut rem_ctx = AsyncContext::new(Driver::from_engine(engine));
    let rem = Asgd::new(objective).run(&mut rem_ctx, &d, &cfg(BarrierFilter::Asp, compress));

    assert_eq!(sim.updates, 150, "sim must spend the budget");
    assert_eq!(rem.updates, 150, "remote must spend the budget");
    let sim_gap = sim.final_objective - baseline;
    let rem_gap = rem.final_objective - baseline;
    assert!(sim_gap < 0.25 * gap0, "sim gap {sim_gap} / {gap0}");
    assert!(rem_gap < 0.25 * gap0, "remote gap {rem_gap} / {gap0}");
    assert!(
        (sim_gap - rem_gap).abs() <= 0.10 * gap0,
        "sim gap {sim_gap} and remote gap {rem_gap} disagree (gap0 {gap0})"
    );
    // Compression actually engaged on the wire: 150 tasks of a dense
    // 10-dim objective would ship ≥ 97 bytes each uncompressed; the top-4
    // i8 frame is 45 bytes.
    assert!(
        rem.result_bytes < 150 * 97,
        "remote result bytes {} look uncompressed",
        rem.result_bytes
    );
}

#[test]
fn compressor_bank_stays_bounded_under_churn_and_prunes_on_reuse() {
    // The churn leak regression: under a long kill/revive/join schedule,
    // dead workers' partitions are re-dealt over the alive set and a
    // joined worker (id past the starting cluster size) starts pulling
    // tasks, yet every task is keyed by its rdd partition — so the bank's
    // error-feedback map must never exceed the run's partition universe no
    // matter how the membership thrashes. Partitions are pinned explicitly
    // because the sim assigns join ids at scheduling time, which would
    // otherwise grow the default (= worker count) universe.
    let d = dataset();
    let objective = Objective::LeastSquares { lambda: 0.0 };
    let compress = CompressCfg::TopK {
        k: 4,
        quant: Quant::I8,
    };
    let bank = CompressorBank::new();
    let mut ctx = AsyncContext::sim(quiet_spec());
    let chaos = ChaosSchedule::pcs_churn(5, WORKERS, VTime::from_micros(150));
    ctx.driver_mut().install_chaos(&chaos);
    let mut churned = cfg(BarrierFilter::Asp, compress);
    churned.partitions = WORKERS;
    let r = Asgd::new(objective)
        .with_compressor_bank(bank.clone())
        .run(&mut ctx, &d, &churned);
    assert_eq!(r.updates, 150, "churn run must spend the budget");
    assert!(
        bank.len() <= WORKERS,
        "bank grew past the partition universe: {} parts for {} partitions",
        bank.len(),
        WORKERS
    );
    assert!(bank.parts().iter().all(|&p| p < WORKERS));
    assert_eq!(bank.rejected_frames(), 0, "finite deltas never reject");

    // Reusing the bank on a smaller partition universe prunes the
    // stragglers at run start instead of accreting them forever.
    let before = bank.len();
    let mut ctx2 = AsyncContext::sim(quiet_spec());
    let mut small = cfg(BarrierFilter::Asp, compress);
    small.partitions = 2;
    let r2 = Asgd::new(objective)
        .with_compressor_bank(bank.clone())
        .run(&mut ctx2, &d, &small);
    assert_eq!(r2.updates, 150);
    assert!(
        bank.len() <= 2,
        "rerun with 2 partitions must prune the {before}-part bank down, got {}",
        bank.len()
    );
}
