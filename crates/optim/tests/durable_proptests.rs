//! Property tests for the crash-consistent checkpoint store: under
//! *arbitrary* seeded disk-fault schedules, `latest_valid` never returns a
//! faulted generation and never loses the newest cleanly committed one —
//! the two invariants auto-resume stands on.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use async_optim::{Checkpoint, CheckpointStore, DiskFault, DiskFaultPlan, SolverHistory};
use proptest::prelude::*;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn scratch_dir() -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("async-durable-prop-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Deterministic per-attempt payload, so the oracle can re-derive what the
/// newest clean generation must contain.
fn payload(attempt: usize) -> Vec<u8> {
    (0..24 + attempt)
        .map(|i| (attempt as u8) ^ (i as u8))
        .collect()
}

/// Faults whose save attempt *reports success* (the writer cannot tell):
/// torn payloads and post-commit bit rot are only caught at read time.
fn silent(fault: DiskFault) -> bool {
    matches!(
        fault,
        DiskFault::TornWrite { .. } | DiskFault::CorruptByte { .. }
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn latest_valid_is_always_the_newest_clean_generation(
        seed in 0u64..1_000_000,
        attempts in 1usize..32,
    ) {
        let dir = scratch_dir();
        let plan = DiskFaultPlan::random(seed, attempts);
        let mut store = CheckpointStore::open(&dir)
            .unwrap()
            .with_fault_plan(plan.clone());

        // Drive one save per schedule slot; the oracle is the newest slot
        // whose attempt ran clean.
        let mut newest_clean: Option<usize> = None;
        for i in 0..attempts {
            let generation = (i + 1) as u64;
            let result = store.save(generation, &payload(i));
            match plan.faults[i] {
                None => {
                    prop_assert!(result.is_ok(), "clean save {i} must commit");
                    newest_clean = Some(i);
                }
                Some(f) if silent(f) => {
                    // The writer believes it succeeded; only recovery-time
                    // validation can tell the generation is damaged.
                    prop_assert!(result.is_ok(), "silent fault {f:?} at {i}");
                    prop_assert!(!store.is_valid(generation));
                }
                Some(f) => {
                    prop_assert!(result.is_err(), "loud fault {f:?} at {i}");
                    prop_assert!(!store.is_valid(generation));
                }
            }
        }

        // Invariant 1: recovery never returns a faulted generation.
        // Invariant 2: the newest cleanly committed generation is never
        // lost (retention must not prune it, havoc must not shadow it).
        let expect = newest_clean.map(|i| ((i + 1) as u64, payload(i)));
        prop_assert_eq!(store.latest_valid(), expect.clone());

        // A fresh process sees the same recovery point: reopen from disk
        // with no in-memory state.
        let reopened = CheckpointStore::open(&dir).unwrap();
        prop_assert_eq!(reopened.latest_valid(), expect);

        // Counter accounting matches the fault classification.
        let loud = plan.faults[..attempts]
            .iter()
            .filter(|f| matches!(f, Some(x) if !silent(*x)))
            .count() as u64;
        prop_assert_eq!(store.counters().saves_failed, loud);
        prop_assert_eq!(store.counters().saves_ok, attempts as u64 - loud);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoints_recovered_under_faults_parse_and_match(
        seed in 0u64..1_000_000,
        attempts in 1usize..16,
        dim in 1usize..12,
    ) {
        // The end-to-end shape of auto-resume: real checkpoint bytes
        // through a faulted store — whatever `latest_valid` hands back
        // must parse and equal the checkpoint of that exact generation.
        let dir = scratch_dir();
        let plan = DiskFaultPlan::random(seed ^ 0x5EED, attempts);
        let mut store = CheckpointStore::open(&dir)
            .unwrap()
            .with_fault_plan(plan.clone());

        let ckpt_at = |i: usize| Checkpoint {
            solver: "asgd".to_string(),
            updates: (i as u64 + 1) * 10,
            version: (i as u64 + 1) * 10,
            w: (0..dim).map(|c| i as f64 + c as f64 * 0.5).collect(),
            history: SolverHistory::None,
            residuals: Some(vec![(0, vec![0.25 * (i as f64 + 1.0)])]),
        };
        let mut newest_clean = None;
        for i in 0..attempts {
            let _ = store.save(ckpt_at(i).updates, &ckpt_at(i).to_bytes());
            if plan.faults[i].is_none() {
                newest_clean = Some(i);
            }
        }

        match (store.latest_valid(), newest_clean) {
            (Some((generation, bytes)), Some(i)) => {
                prop_assert_eq!(generation, ckpt_at(i).updates);
                let recovered = Checkpoint::from_bytes(&bytes).expect("valid bytes parse");
                prop_assert_eq!(recovered, ckpt_at(i));
            }
            (None, None) => {}
            (got, want) => prop_assert!(
                false,
                "recovery disagreed with the oracle: got {got:?}, wanted clean slot {want:?}"
            ),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
