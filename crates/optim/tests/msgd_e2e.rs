//! End-to-end runs of the staleness-adaptive momentum solver
//! (`AsyncMsgd`) under ASP, BSP and SSP, mirroring the ASAGA suite:
//! determinism, convergence, straggler behaviour, and the adaptive-damping
//! property itself (momentum must not destabilize stale ASP runs).

use async_cluster::{ClusterSpec, CommModel, DelayModel, VDur};
use async_core::{AsyncContext, BarrierFilter};
use async_data::{Dataset, SynthSpec};
use async_linalg::ParallelismCfg;
use async_optim::{Asgd, AsyncMsgd, AsyncSolver, Objective, RunReport, SolverCfg};

const WORKERS: usize = 4;

fn cds_ctx() -> AsyncContext {
    // One controlled-delay straggler, free comms, zero scheduling overhead
    // — same cluster as the ASGD/ASAGA barrier suite.
    AsyncContext::sim(
        ClusterSpec::homogeneous(
            WORKERS,
            DelayModel::ControlledDelay {
                worker: WORKERS - 1,
                intensity: 1.0,
            },
        )
        .with_comm(CommModel::free())
        .with_sched_overhead(VDur::ZERO),
    )
}

fn dataset() -> Dataset {
    SynthSpec::dense("msgd-e2e", 240, 12, 7)
        .generate()
        .unwrap()
        .0
}

fn run_msgd(barrier: BarrierFilter, dataset: &Dataset, step: f64, momentum: f64) -> RunReport {
    let mut ctx = cds_ctx();
    let cfg = SolverCfg {
        step,
        batch_fraction: 0.25,
        barrier,
        max_updates: 150,
        seed: 3,
        ..SolverCfg::default()
    };
    AsyncMsgd::new(Objective::LeastSquares { lambda: 1e-3 })
        .with_momentum(momentum)
        .run(&mut ctx, dataset, &cfg)
}

#[test]
fn msgd_is_deterministic_under_every_barrier() {
    let d = dataset();
    for barrier in [
        BarrierFilter::Asp,
        BarrierFilter::Bsp,
        BarrierFilter::Ssp { slack: 2 },
    ] {
        let a = run_msgd(barrier.clone(), &d, 0.02, 0.9);
        let b = run_msgd(barrier.clone(), &d, 0.02, 0.9);
        assert_eq!(a.final_w, b.final_w, "{barrier:?}: iterates must reproduce");
        assert_eq!(a.worker_clocks, b.worker_clocks);
        assert_eq!(a.wall_clock, b.wall_clock);
        assert_eq!(a.updates, 150, "{barrier:?}: full budget");
    }
}

#[test]
fn msgd_converges_under_asp_bsp_and_ssp() {
    let d = dataset();
    let objective = Objective::LeastSquares { lambda: 1e-3 };
    let baseline = objective.optimum(ParallelismCfg::sequential(), &d).unwrap();
    let f0 = objective.full_objective(ParallelismCfg::sequential(), &d, &vec![0.0; d.cols()]);
    let gap0 = f0 - baseline;
    for barrier in [
        BarrierFilter::Asp,
        BarrierFilter::Bsp,
        BarrierFilter::Ssp { slack: 2 },
    ] {
        let r = run_msgd(barrier.clone(), &d, 0.02, 0.9);
        let gap = r.final_objective - baseline;
        assert!(
            gap < 0.2 * gap0,
            "{barrier:?}: momentum SGD should close most of the gap: {gap} of {gap0}"
        );
    }
}

#[test]
fn msgd_outpaces_plain_asgd_under_bsp_at_the_same_step() {
    // With zero staleness (BSP), AsyncMsgd is exactly heavy-ball SGD; at
    // the same (conservative) step it should make more progress per update
    // than undamped plain SGD.
    let d = dataset();
    let step = 0.01;
    let msgd = run_msgd(BarrierFilter::Bsp, &d, step, 0.9);
    let mut ctx = cds_ctx();
    let cfg = SolverCfg {
        step,
        batch_fraction: 0.25,
        barrier: BarrierFilter::Bsp,
        max_updates: 150,
        seed: 3,
        ..SolverCfg::default()
    };
    let plain = Asgd::new(Objective::LeastSquares { lambda: 1e-3 }).run(&mut ctx, &d, &cfg);
    assert!(
        msgd.final_objective < plain.final_objective,
        "momentum ({}) should beat plain SGD ({}) at step {step}",
        msgd.final_objective,
        plain.final_objective
    );
}

#[test]
fn adaptive_damping_keeps_stale_asp_stable() {
    // Under ASP against a straggler, a fixed-β heavy ball at this step
    // size is at the edge of stability; the staleness-adaptive β must
    // deliver a finite, convergent run that is no worse than plain ASGD
    // blown up by oscillation.
    let d = dataset();
    let r = run_msgd(BarrierFilter::Asp, &d, 0.02, 0.9);
    assert!(r.final_objective.is_finite());
    let f0 = Objective::LeastSquares { lambda: 1e-3 }.full_objective(
        ParallelismCfg::sequential(),
        &d,
        &vec![0.0; d.cols()],
    );
    assert!(
        r.final_objective < 0.5 * f0,
        "stale momentum run must still descend: {} vs {f0}",
        r.final_objective
    );
    // The run actually observed staleness (otherwise this test proves
    // nothing about the adaptive rule).
    assert!(r.max_staleness > 0, "ASP under a straggler must see delay");
}

#[test]
fn msgd_asp_beats_bsp_wall_clock_under_the_straggler() {
    let d = dataset();
    let asp = run_msgd(BarrierFilter::Asp, &d, 0.02, 0.9);
    let bsp = run_msgd(BarrierFilter::Bsp, &d, 0.02, 0.9);
    assert_eq!(asp.updates, bsp.updates, "same update budget");
    assert!(
        asp.wall_clock < bsp.wall_clock,
        "ASP-MSGD ({}) should reach the budget before BSP-MSGD ({})",
        asp.wall_clock,
        bsp.wall_clock
    );
    assert!(asp.mean_wait < bsp.mean_wait);
}

#[test]
fn msgd_converges_on_sparse_logistic_via_the_fast_path() {
    // The paper-scenario pairing: sparse (rcv1-shaped) logistic regression
    // driven by the staleness-adaptive momentum solver. The gradients must
    // actually take the sparse path (entries ≪ tasks × batch × dim).
    let (d, _) = SynthSpec::sparse("msgd-sp", 240, 600, 20, 11)
        .generate_classification()
        .unwrap();
    let objective = Objective::Logistic { lambda: 1e-3 };
    let mut ctx = cds_ctx();
    let cfg = SolverCfg {
        step: 0.5,
        batch_fraction: 0.25,
        barrier: BarrierFilter::Ssp { slack: 2 },
        max_updates: 300,
        seed: 5,
        ..SolverCfg::default()
    };
    let r = AsyncMsgd::new(objective).run(&mut ctx, &d, &cfg);
    let f0 = objective.full_objective(ParallelismCfg::sequential(), &d, &vec![0.0; d.cols()]);
    assert!(
        r.final_objective < 0.4 * f0,
        "sparse logistic must converge: {} vs initial {f0}",
        r.final_objective
    );
    // Fast-path certificate: a dense evaluation would have touched
    // tasks × batch × 600 entries; the sparse kernel touches ~20 per row.
    let dense_equiv = r.tasks_completed * 15 * 600; // batch = 0.25 × 60 rows
    assert!(
        r.grad_entries * 10 < dense_equiv,
        "gradients must ride the sparse kernel: {} vs dense-equivalent {dense_equiv}",
        r.grad_entries
    );
}
