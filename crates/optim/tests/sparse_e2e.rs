//! End-to-end checks of the sparse gradient fast path: the same logical
//! dataset run through CSR and dense storage must converge to the same
//! place, and the sparse run must do orders-of-magnitude less gradient
//! work (entries touched, result bytes, virtual wall clock).

use async_cluster::{ClusterSpec, CommModel, DelayModel, VDur};
use async_core::{AsyncContext, BarrierFilter};
use async_data::{Dataset, SynthSpec};
use async_linalg::ParallelismCfg;
use async_optim::{Asaga, Asgd, AsyncSolver, Objective, RunReport, SolverCfg};

const WORKERS: usize = 4;

fn quiet_ctx() -> AsyncContext {
    AsyncContext::sim(
        ClusterSpec::homogeneous(WORKERS, DelayModel::None)
            .with_comm(CommModel::free())
            .with_sched_overhead(VDur::ZERO),
    )
}

/// A high-dimension / low-nnz logistic problem in both storages.
fn paired_datasets() -> (Dataset, Dataset) {
    let (sparse, _) = SynthSpec::sparse("sp-e2e", 200, 800, 16, 13)
        .generate_classification()
        .unwrap();
    let dense = sparse.densified();
    (sparse, dense)
}

fn run_asgd(dataset: &Dataset) -> RunReport {
    let mut ctx = quiet_ctx();
    let cfg = SolverCfg {
        step: 0.5,
        batch_fraction: 0.25,
        barrier: BarrierFilter::Bsp,
        max_updates: 120,
        seed: 11,
        ..SolverCfg::default()
    };
    Asgd::new(Objective::Logistic { lambda: 1e-3 }).run(&mut ctx, dataset, &cfg)
}

#[test]
fn sparse_and_dense_storages_agree_under_bsp() {
    // BSP with a homogeneous, zero-overhead cluster consumes whole waves,
    // but within-wave arrival order follows task cost, which differs
    // between storages. The *convergence destination* must nonetheless
    // agree tightly: same objective landscape, same sampled batches.
    let (sparse, dense) = paired_datasets();
    let rs = run_asgd(&sparse);
    let rd = run_asgd(&dense);
    assert_eq!(rs.updates, rd.updates);
    let rel = (rs.final_objective - rd.final_objective).abs() / rd.final_objective;
    assert!(
        rel < 0.05,
        "storages must land together: sparse {} vs dense {} (rel {rel})",
        rs.final_objective,
        rd.final_objective
    );
    // Both runs converge properly.
    let f0 = Objective::Logistic { lambda: 1e-3 }.full_objective(
        ParallelismCfg::sequential(),
        &sparse,
        &vec![0.0; sparse.cols()],
    );
    assert!(rs.final_objective < 0.4 * f0);
}

#[test]
fn sparse_run_is_deterministic() {
    let (sparse, _) = paired_datasets();
    let a = run_asgd(&sparse);
    let b = run_asgd(&sparse);
    assert_eq!(a.final_w, b.final_w, "sparse path must be bit-reproducible");
    assert_eq!(a.grad_entries, b.grad_entries);
    assert_eq!(a.result_bytes, b.result_bytes);
}

#[test]
fn sparse_path_does_orders_of_magnitude_less_gradient_work() {
    let (sparse, dense) = paired_datasets();
    let rs = run_asgd(&sparse);
    let rd = run_asgd(&dense);
    // ~16 nnz per row vs 800 dense entries: ≥ 40x less kernel work.
    assert!(
        rs.grad_entries * 40 <= rd.grad_entries,
        "entries touched: sparse {} vs dense {}",
        rs.grad_entries,
        rd.grad_entries
    );
    // Sparse result messages ship only the batch support (the union of
    // ~13 rows × 16 nnz in 800 dims, so ~3x smaller here; the margin
    // widens with dimension).
    assert!(
        rs.result_bytes * 2 <= rd.result_bytes,
        "result bytes: sparse {} vs dense {}",
        rs.result_bytes,
        rd.result_bytes
    );
    // And the modeled cluster time reflects the cheaper tasks.
    assert!(
        rs.wall_clock < rd.wall_clock,
        "virtual wall clock: sparse {} vs dense {}",
        rs.wall_clock,
        rd.wall_clock
    );
}

#[test]
fn asaga_rides_the_sparse_path_and_converges() {
    let (sparse, _) = paired_datasets();
    let objective = Objective::Logistic { lambda: 1e-3 };
    let mut ctx = quiet_ctx();
    let cfg = SolverCfg {
        step: 0.3,
        batch_fraction: 0.2,
        barrier: BarrierFilter::Asp,
        max_updates: 400,
        seed: 19,
        ..SolverCfg::default()
    };
    let r = Asaga::new(objective).run(&mut ctx, &sparse, &cfg);
    assert_eq!(r.updates, 400);
    let f0 = objective.full_objective(
        ParallelismCfg::sequential(),
        &sparse,
        &vec![0.0; sparse.cols()],
    );
    assert!(
        r.final_objective < 0.4 * f0,
        "sparse ASAGA must converge: {} vs {f0}",
        r.final_objective
    );
    // Two evaluations per sampled row, still far below dense-equivalent
    // work (batch ≈ 10 rows of 800 dims per task).
    let dense_equiv = r.tasks_completed * 2 * 10 * 800;
    assert!(
        r.grad_entries * 10 < dense_equiv,
        "ASAGA gradients must be sparse: {} vs {dense_equiv}",
        r.grad_entries
    );
}

#[test]
fn sparse_asaga_matches_dense_asaga_destination() {
    // Variance reduction on both storages of the same least-squares
    // problem: the optimality gaps must both be (nearly) closed.
    let (base, _) = SynthSpec::sparse("saga-pair", 150, 400, 12, 29)
        .generate()
        .unwrap();
    let sparse = base;
    let dense = sparse.densified();
    let objective = Objective::LeastSquares { lambda: 1e-3 };
    let baseline = objective
        .optimum(ParallelismCfg::sequential(), &sparse)
        .unwrap();
    let run = |d: &Dataset| {
        let mut ctx = quiet_ctx();
        let cfg = SolverCfg {
            step: 0.02,
            batch_fraction: 0.2,
            barrier: BarrierFilter::Asp,
            max_updates: 800,
            seed: 31,
            ..SolverCfg::default()
        };
        Asaga::new(objective).run(&mut ctx, d, &cfg)
    };
    let rs = run(&sparse);
    let rd = run(&dense);
    let f0 = objective.full_objective(
        ParallelismCfg::sequential(),
        &sparse,
        &vec![0.0; sparse.cols()],
    );
    let gap0 = f0 - baseline;
    for (name, r) in [("sparse", &rs), ("dense", &rd)] {
        let gap = r.final_objective - baseline;
        assert!(
            gap < 0.2 * gap0,
            "{name} ASAGA should close the gap: {gap} of {gap0}"
        );
    }
}
