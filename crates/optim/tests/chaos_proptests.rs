//! Property tests for elasticity: the simulated engine must stay *bit*
//! deterministic under arbitrary chaos schedules, and the threaded engine
//! must agree with the simulator on where a fixed chaos script lands.

use async_cluster::{ChaosCfg, ChaosSchedule, ClusterSpec, CommModel, DelayModel, VDur, VTime};
use async_core::{AsyncContext, BarrierFilter};
use async_data::{Dataset, SynthSpec};
use async_linalg::ParallelismCfg;
use async_optim::{Asgd, AsyncSolver, Objective, RunReport, SolverCfg};
use proptest::prelude::*;

const WORKERS: usize = 4;

fn quiet_spec() -> ClusterSpec {
    ClusterSpec::homogeneous(WORKERS, DelayModel::None)
        .with_comm(CommModel::free())
        .with_sched_overhead(VDur::ZERO)
}

fn dataset() -> Dataset {
    SynthSpec::dense("chaos-prop", 160, 10, 3)
        .generate()
        .unwrap()
        .0
}

fn run_sim_chaos(d: &Dataset, chaos: &ChaosSchedule, barrier: BarrierFilter) -> RunReport {
    let mut ctx = AsyncContext::sim(quiet_spec());
    ctx.driver_mut().install_chaos(chaos);
    let cfg = SolverCfg {
        step: 0.05,
        batch_fraction: 0.25,
        barrier,
        max_updates: 80,
        seed: 9,
        ..SolverCfg::default()
    };
    Asgd::new(Objective::LeastSquares { lambda: 1e-3 }).run(&mut ctx, d, &cfg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn sim_runs_are_bit_identical_under_arbitrary_chaos(seed in 0u64..1_000_000, slack in 0u64..4) {
        // Same seed ⇒ same schedule ⇒ identical completion order (clocks,
        // task counts, trace instants) and bit-identical final iterate.
        let d = dataset();
        let chaos = ChaosSchedule::random(
            seed,
            WORKERS,
            VTime::from_micros(100),
            &ChaosCfg { events: 8, ..ChaosCfg::default() },
        );
        let barrier = BarrierFilter::Ssp { slack };
        let a = run_sim_chaos(&d, &chaos, barrier.clone());
        let b = run_sim_chaos(&d, &chaos, barrier);
        prop_assert_eq!(a.updates, b.updates);
        prop_assert_eq!(a.tasks_completed, b.tasks_completed);
        prop_assert_eq!(a.worker_clocks.clone(), b.worker_clocks.clone());
        prop_assert_eq!(a.wall_clock, b.wall_clock);
        prop_assert_eq!(a.max_staleness, b.max_staleness);
        // Bit identity of the final iterate and the whole trace.
        prop_assert_eq!(a.final_w.len(), b.final_w.len());
        for (x, y) in a.final_w.iter().zip(b.final_w.iter()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
        prop_assert_eq!(a.trace.points(), b.trace.points());
        prop_assert_eq!(
            a.final_objective.to_bits(),
            b.final_objective.to_bits()
        );
    }

    #[test]
    fn random_chaos_never_stops_the_run_short(seed in 0u64..1_000_000) {
        // Valid schedules keep ≥1 worker alive at all times, so the full
        // update budget must always be reached.
        let d = dataset();
        let chaos = ChaosSchedule::random(
            seed,
            WORKERS,
            VTime::from_micros(80),
            &ChaosCfg { events: 10, ..ChaosCfg::default() },
        );
        let r = run_sim_chaos(&d, &chaos, BarrierFilter::Asp);
        prop_assert_eq!(r.updates, 80);
        prop_assert!(r.final_objective.is_finite());
    }
}

#[test]
fn sim_and_threaded_agree_on_a_fixed_chaos_script() {
    // The same script — kill w1 early, revive it, join a worker — runs on
    // both engines. Completion interleaving differs (real scheduling vs
    // virtual clock), so the iterates differ, but both must converge to
    // the same neighborhood: identical budgets, losses within tolerance.
    let d = dataset();
    let objective = Objective::LeastSquares { lambda: 1e-3 };
    let baseline = objective.optimum(ParallelismCfg::sequential(), &d).unwrap();
    let f0 = objective.full_objective(ParallelismCfg::sequential(), &d, &vec![0.0; d.cols()]);
    let gap0 = f0 - baseline;
    let chaos = ChaosSchedule::new()
        .kill(VTime::from_micros(100), 1)
        .revive(VTime::from_micros(400), 1)
        .join(VTime::from_micros(700));
    let cfg = SolverCfg {
        step: 0.05,
        batch_fraction: 0.25,
        barrier: BarrierFilter::Asp,
        max_updates: 160,
        seed: 21,
        ..SolverCfg::default()
    };

    let mut sim_ctx = AsyncContext::sim(quiet_spec());
    sim_ctx.driver_mut().install_chaos(&chaos);
    let sim = Asgd::new(objective).run(&mut sim_ctx, &d, &cfg);

    let mut thr_ctx = AsyncContext::threaded(quiet_spec(), 1.0);
    thr_ctx.driver_mut().install_chaos(&chaos);
    let thr = Asgd::new(objective).run(&mut thr_ctx, &d, &cfg);

    assert_eq!(
        sim.updates, thr.updates,
        "same update budget on both engines"
    );
    let sim_gap = sim.final_objective - baseline;
    let thr_gap = thr.final_objective - baseline;
    assert!(
        sim_gap < 0.15 * gap0 && thr_gap < 0.15 * gap0,
        "both engines converge: sim {sim_gap}, threaded {thr_gap}, gap0 {gap0}"
    );
    assert!(
        (sim_gap - thr_gap).abs() <= 0.10 * gap0,
        "final losses agree within tolerance: sim {sim_gap} vs threaded {thr_gap}"
    );
    // Both engines applied the join (the threaded engine applies chaos
    // only when polled, so wait past the horizon and poll once in case
    // the run drained before the join's instant).
    assert_eq!(sim_ctx.workers(), WORKERS + 1);
    std::thread::sleep(std::time::Duration::from_millis(2));
    let _ = thr_ctx.collect_all::<()>();
    assert_eq!(thr_ctx.workers(), WORKERS + 1);
}
