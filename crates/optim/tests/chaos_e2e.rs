//! End-to-end elasticity: every solver × every classic barrier under
//! seeded kill / revive / join chaos schedules, plus checkpoint/restore —
//! the "cloud engine" scenarios where executors die, come back, and new
//! capacity joins mid-run.

use async_cluster::{ChaosSchedule, ClusterSpec, CommModel, DelayModel, VDur, VTime};
use async_core::{AsyncContext, BarrierFilter, SubmitOpts};
use async_data::{Dataset, SynthSpec};
use async_linalg::ParallelismCfg;
use async_optim::{
    Asaga, Asgd, AsyncMsgd, AsyncSolver, Checkpoint, CheckpointError, Objective, RunReport,
    SolverCfg, SolverHistory,
};
use sparklet::WorkerCtx;

const WORKERS: usize = 4;

fn quiet_spec(delay: DelayModel) -> ClusterSpec {
    ClusterSpec::homogeneous(WORKERS, delay)
        .with_comm(CommModel::free())
        .with_sched_overhead(VDur::ZERO)
}

fn sim_ctx() -> AsyncContext {
    AsyncContext::sim(quiet_spec(DelayModel::None))
}

fn dataset() -> Dataset {
    SynthSpec::dense("chaos-e2e", 240, 12, 7)
        .generate()
        .unwrap()
        .0
}

fn cfg(barrier: BarrierFilter, max_updates: u64, seed: u64) -> SolverCfg {
    SolverCfg {
        step: 0.04,
        batch_fraction: 0.25,
        barrier,
        max_updates,
        seed,
        ..SolverCfg::default()
    }
}

/// A schedule with ≥1 kill, ≥1 revival, and ≥1 join, timed to land inside
/// a ~150-update run on the quiet 4-worker sim cluster (tasks take ~2µs of
/// virtual time there; the full budget spans roughly 100–200µs).
fn mixed_chaos() -> ChaosSchedule {
    ChaosSchedule::new()
        .kill(VTime::from_micros(20), 1)
        .kill(VTime::from_micros(35), 3)
        .revive(VTime::from_micros(60), 1)
        .join(VTime::from_micros(80))
        .revive(VTime::from_micros(100), 3)
}

fn run_solver(
    solver: &mut dyn AsyncSolver,
    d: &Dataset,
    barrier: BarrierFilter,
    chaos: Option<&ChaosSchedule>,
    max_updates: u64,
) -> (RunReport, AsyncContext) {
    let mut ctx = sim_ctx();
    if let Some(s) = chaos {
        ctx.driver_mut().install_chaos(s);
    }
    let r = solver.run(&mut ctx, d, &cfg(barrier, max_updates, 11));
    (r, ctx)
}

#[test]
fn every_solver_and_barrier_survives_mixed_chaos() {
    // The acceptance grid: {ASGD, ASAGA, MSGD} × {ASP, BSP, SSP}, each
    // under a schedule with kills, revivals, and a join. Every run must
    // reach its full update budget and converge to the same tolerance as
    // its static-cluster twin.
    let d = dataset();
    let objective = Objective::LeastSquares { lambda: 1e-3 };
    let baseline = objective.optimum(ParallelismCfg::sequential(), &d).unwrap();
    let f0 = objective.full_objective(ParallelismCfg::sequential(), &d, &vec![0.0; d.cols()]);
    let gap0 = f0 - baseline;
    type SolverFactory = Box<dyn Fn() -> Box<dyn AsyncSolver>>;
    let solvers: Vec<(&str, SolverFactory)> = vec![
        ("asgd", Box::new(move || Box::new(Asgd::new(objective)))),
        ("asaga", Box::new(move || Box::new(Asaga::new(objective)))),
        (
            "async-msgd",
            Box::new(move || Box::new(AsyncMsgd::new(objective).with_momentum(0.5))),
        ),
    ];
    let barriers = [
        BarrierFilter::Asp,
        BarrierFilter::Bsp,
        BarrierFilter::Ssp { slack: 2 },
    ];
    let chaos = mixed_chaos();
    for (name, make) in &solvers {
        for barrier in &barriers {
            let budget = 150;
            let (static_run, _) = run_solver(make().as_mut(), &d, barrier.clone(), None, budget);
            let (chaos_run, ctx) =
                run_solver(make().as_mut(), &d, barrier.clone(), Some(&chaos), budget);
            assert_eq!(
                chaos_run.updates, budget,
                "{name}/{barrier:?}: chaos run must reach the full budget"
            );
            let static_gap = static_run.final_objective - baseline;
            let chaos_gap = chaos_run.final_objective - baseline;
            // Same tolerance as the static twin: the chaos run closes the
            // optimality gap essentially as far (stochastic paths differ,
            // so allow slack around the static landing point).
            let tol = (2.0 * static_gap).max(0.05 * gap0);
            assert!(
                chaos_gap < tol,
                "{name}/{barrier:?}: chaos gap {chaos_gap} vs static {static_gap} (gap0 {gap0})"
            );
            // Final membership: 4 original workers (all revived) + 1 join.
            let snap = ctx.stat();
            assert_eq!(snap.workers.len(), WORKERS + 1, "{name}/{barrier:?}");
            assert_eq!(snap.alive_count(), WORKERS + 1, "{name}/{barrier:?}");
            // The joined worker did real work.
            assert!(
                chaos_run.worker_clocks.len() == WORKERS + 1,
                "{name}/{barrier:?}: clocks {:?}",
                chaos_run.worker_clocks
            );
        }
    }
}

#[test]
fn no_stale_epoch_result_is_applied_after_revival() {
    // Drive the context directly with long tasks: worker 1 is killed with
    // a task in flight, then revived. Epoch guarding must drop the dead
    // incarnation's result — every surfaced result from worker 1 must have
    // been issued after the revival instant.
    let mut ctx = sim_ctx();
    let kill_at = VTime::from_micros(500_000);
    let revive_at = VTime::from_micros(700_000);
    ctx.driver_mut().schedule_failure(1, kill_at);
    ctx.driver_mut().schedule_revival(1, revive_at);
    // 1-second tasks: the first wave is in flight across the kill.
    let rdd = sparklet::Rdd::parallelize_with_cost(
        (0..WORKERS).map(|p| vec![p as i64]).collect(),
        vec![2e8; WORKERS],
    );
    let task = |_w: &mut WorkerCtx, data: Vec<i64>, _p: usize| data[0];
    let mut collected = Vec::new();
    for _round in 0..6 {
        ctx.async_reduce(&rdd, &BarrierFilter::Asp, SubmitOpts::default(), task);
        while let Some(t) = ctx.collect::<i64>() {
            collected.push(t.attrs);
        }
    }
    let from_w1: Vec<_> = collected.iter().filter(|a| a.worker == 1).collect();
    assert!(!from_w1.is_empty(), "revived worker produced results");
    for a in &from_w1 {
        assert!(
            a.issued_at >= revive_at,
            "stale pre-revival result surfaced: issued at {}, revived at {revive_at}",
            a.issued_at
        );
    }
    // Exactly one task (worker 1's first) was lost to the kill.
    let done_w1_before_kill = collected
        .iter()
        .filter(|a| a.worker == 1 && a.issued_at < kill_at)
        .count();
    assert_eq!(
        done_w1_before_kill, 0,
        "the in-flight task died with its worker"
    );
}

#[test]
fn asaga_rebuilds_history_for_revived_workers() {
    // ASAGA across a kill + revival: the rejoined worker's history cache
    // is gone (fresh executor), so it re-fetches what it needs and the run
    // still converges with an unpoisoned table.
    let d = dataset();
    let objective = Objective::LeastSquares { lambda: 1e-3 };
    let baseline = objective.optimum(ParallelismCfg::sequential(), &d).unwrap();
    let chaos = ChaosSchedule::new()
        .kill(VTime::from_micros(30), 2)
        .revive(VTime::from_micros(90), 2);
    let mut solver = Asaga::new(objective);
    let (r, ctx) = run_solver(&mut solver, &d, BarrierFilter::Asp, Some(&chaos), 400);
    assert_eq!(r.updates, 400);
    let f0 = objective.full_objective(ParallelismCfg::sequential(), &d, &vec![0.0; d.cols()]);
    let gap = r.final_objective - baseline;
    assert!(
        gap < 0.05 * (f0 - baseline),
        "ASAGA under churn should still close the gap: {gap}"
    );
    // The revived worker kept working after its return.
    let snap = ctx.stat();
    assert!(snap.workers[2].alive);
    assert!(
        snap.workers[2].completed > 0,
        "revived worker completed tasks in its second life"
    );
}

#[test]
fn pcs_churn_preset_runs_all_barriers() {
    let d = dataset();
    let objective = Objective::LeastSquares { lambda: 1e-3 };
    let chaos = ChaosSchedule::pcs_churn(5, WORKERS, VTime::from_micros(150));
    let (kills, revives, joins) = chaos.counts();
    assert!(kills >= 1 && revives == kills && joins == 1);
    for barrier in [
        BarrierFilter::Asp,
        BarrierFilter::Bsp,
        BarrierFilter::Ssp { slack: 1 },
    ] {
        let mut solver = Asgd::new(objective);
        let (r, _) = run_solver(&mut solver, &d, barrier.clone(), Some(&chaos), 150);
        assert_eq!(r.updates, 150, "{barrier:?} under pcs_churn");
        assert!(r.final_objective.is_finite());
    }
}

#[test]
fn checkpoint_restores_bit_identical_server_state() {
    let d = dataset();
    let objective = Objective::LeastSquares { lambda: 1e-3 };
    let run = || {
        let mut ctx = sim_ctx();
        let mut c = cfg(BarrierFilter::Asp, 120, 31);
        c.checkpoint_every = 40;
        Asgd::new(objective).run(&mut ctx, &d, &c)
    };
    let a = run();
    assert_eq!(a.checkpoints.len(), 3, "one checkpoint per 40 updates");
    // Serialization round-trips the mid-run server state bit-for-bit.
    for ckpt in &a.checkpoints {
        let restored = Checkpoint::from_bytes(&ckpt.to_bytes()).unwrap();
        assert_eq!(&restored, ckpt);
        for (x, y) in ckpt.w.iter().zip(restored.w.iter()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
    // And the checkpointed state is itself deterministic.
    let b = run();
    assert_eq!(a.checkpoints, b.checkpoints);
    assert_eq!(a.checkpoints[2].updates, 120);
}

#[test]
fn driver_crash_resumes_from_checkpoint_instead_of_restarting() {
    let d = dataset();
    let objective = Objective::LeastSquares { lambda: 1e-3 };
    let baseline = objective.optimum(ParallelismCfg::sequential(), &d).unwrap();
    let f0 = objective.full_objective(ParallelismCfg::sequential(), &d, &vec![0.0; d.cols()]);
    let gap0 = f0 - baseline;
    let total_budget = 400u64;

    for solver_name in ["asgd", "asaga", "async-msgd"] {
        // Phase 1: the "crashing" driver checkpoints every 100 updates and
        // dies after 200 (simulated by just stopping there).
        let mut ctx = sim_ctx();
        let mut c = cfg(BarrierFilter::Ssp { slack: 2 }, 200, 13);
        c.checkpoint_every = 100;
        let phase1 = match solver_name {
            "asgd" => Asgd::new(objective).run(&mut ctx, &d, &c),
            "asaga" => Asaga::new(objective).run(&mut ctx, &d, &c),
            _ => AsyncMsgd::new(objective).run(&mut ctx, &d, &c),
        };
        let ckpt_bytes = phase1.checkpoints.last().unwrap().to_bytes();

        // Phase 2: a brand-new driver + context restores from the wire
        // bytes and continues to the total budget.
        let ckpt = Checkpoint::from_bytes(&ckpt_bytes).unwrap();
        assert_eq!(ckpt.updates, 200);
        assert_eq!(ckpt.solver, solver_name);
        let mut ctx2 = sim_ctx();
        let c2 = cfg(BarrierFilter::Ssp { slack: 2 }, total_budget - 200, 14);
        let resumed = match solver_name {
            "asgd" => Asgd::new(objective)
                .resume_from(ckpt.clone())
                .run(&mut ctx2, &d, &c2),
            "asaga" => Asaga::new(objective)
                .resume_from(ckpt.clone())
                .run(&mut ctx2, &d, &c2),
            _ => AsyncMsgd::new(objective)
                .resume_from(ckpt.clone())
                .run(&mut ctx2, &d, &c2),
        };
        assert_eq!(resumed.updates, 200);
        // The restored run starts exactly where the crash left off (both
        // traces are raw objectives: cfg.baseline is 0 here)…
        let resumed_start = resumed.trace.points()[0].1;
        let crash_end = phase1.final_objective;
        assert!(
            (resumed_start - crash_end).abs() < 1e-12,
            "{solver_name}: resume must start from the checkpointed model"
        );
        // …and finishes at least as converged as a cold 200-update run,
        // i.e. the checkpoint's progress was not thrown away.
        let mut ctx3 = sim_ctx();
        let cold = match solver_name {
            "asgd" => Asgd::new(objective).run(
                &mut ctx3,
                &d,
                &cfg(BarrierFilter::Ssp { slack: 2 }, 200, 14),
            ),
            "asaga" => Asaga::new(objective).run(
                &mut ctx3,
                &d,
                &cfg(BarrierFilter::Ssp { slack: 2 }, 200, 14),
            ),
            _ => AsyncMsgd::new(objective).run(
                &mut ctx3,
                &d,
                &cfg(BarrierFilter::Ssp { slack: 2 }, 200, 14),
            ),
        };
        let resumed_gap = resumed.final_objective - baseline;
        let cold_gap = cold.final_objective - baseline;
        assert!(
            resumed_gap <= cold_gap * 1.05 + 1e-9 * gap0,
            "{solver_name}: resumed gap {resumed_gap} should beat cold-start gap {cold_gap}"
        );
    }
}

#[test]
fn checkpoint_mismatches_are_typed_errors() {
    let ckpt = Checkpoint {
        solver: "asgd".into(),
        updates: 10,
        version: 10,
        w: vec![0.0; 12],
        history: SolverHistory::None,
        residuals: None,
    };
    assert!(matches!(
        ckpt.validate_for("asaga", 12),
        Err(CheckpointError::SolverMismatch { .. })
    ));
    assert!(matches!(
        ckpt.validate_for("asgd", 13),
        Err(CheckpointError::DimensionMismatch { .. })
    ));
    assert!(ckpt.validate_for("asgd", 12).is_ok());
}

#[test]
#[should_panic(expected = "incompatible resume checkpoint")]
fn resuming_with_a_foreign_checkpoint_panics() {
    let d = dataset();
    let objective = Objective::LeastSquares { lambda: 1e-3 };
    let ckpt = Checkpoint {
        solver: "asaga".into(),
        updates: 5,
        version: 5,
        w: vec![0.0; d.cols()],
        history: SolverHistory::Saga {
            alpha_bar: vec![0.0; d.cols()],
        },
        residuals: None,
    };
    let mut ctx = sim_ctx();
    let _ =
        Asgd::new(objective)
            .resume_from(ckpt)
            .run(&mut ctx, &d, &cfg(BarrierFilter::Asp, 10, 1));
}

#[test]
fn total_cluster_death_then_revival_restarts_the_run() {
    // Every worker dies mid-run; two revive later. The solver's stall
    // restart must pick the run back up and still hit the full budget.
    let d = dataset();
    let objective = Objective::LeastSquares { lambda: 1e-3 };
    let chaos = ChaosSchedule::new()
        .kill(VTime::from_micros(20), 0)
        .kill(VTime::from_micros(20), 1)
        .kill(VTime::from_micros(20), 2)
        .kill(VTime::from_micros(20), 3)
        .revive(VTime::from_micros(50), 0)
        .revive(VTime::from_micros(50), 2);
    let mut solver = Asgd::new(objective);
    let (r, ctx) = run_solver(&mut solver, &d, BarrierFilter::Asp, Some(&chaos), 120);
    assert_eq!(r.updates, 120, "run restarted after the blackout");
    assert_eq!(ctx.stat().alive_count(), 2);
    assert!(r.final_objective.is_finite());
}

#[test]
fn chaos_asgd_converges_on_the_threaded_engine() {
    // The same elastic scenario on real OS threads: kill, revive, join at
    // real elapsed instants. time_scale=1 maps the modeled microseconds
    // onto real microseconds, so the schedule lands mid-run.
    let d = dataset();
    let objective = Objective::LeastSquares { lambda: 1e-3 };
    let baseline = objective.optimum(ParallelismCfg::sequential(), &d).unwrap();
    let f0 = objective.full_objective(ParallelismCfg::sequential(), &d, &vec![0.0; d.cols()]);
    let chaos = ChaosSchedule::new()
        .kill(VTime::from_micros(200), 1)
        .revive(VTime::from_micros(600), 1)
        .join(VTime::from_micros(900));
    let mut ctx = AsyncContext::threaded(quiet_spec(DelayModel::None), 1.0);
    ctx.driver_mut().install_chaos(&chaos);
    let r = Asgd::new(objective).run(&mut ctx, &d, &cfg(BarrierFilter::Asp, 200, 17));
    assert_eq!(r.updates, 200);
    let gap = r.final_objective - baseline;
    assert!(
        gap < 0.2 * (f0 - baseline),
        "threaded chaos run should converge: gap {gap}"
    );
    // The join took effect on the threaded engine too. next() does not
    // block on future chaos, so wait past the horizon and poll once in
    // case the run drained before the join's instant.
    std::thread::sleep(std::time::Duration::from_millis(2));
    let _ = ctx.collect_all::<()>();
    assert_eq!(ctx.workers(), WORKERS + 1);
}
